//! The Bank micro-benchmark (paper §7.1).
//!
//! "Each transaction performs multiple transfers (at most 10) between
//! accounts with an overdraft check (i.e., skip the transfer if account
//! balance is insufficient). In the semantic version of the benchmark,
//! the reads/writes were transformed into `cmp` and `inc` operations."
//!
//! One workload source serves all four algorithms: the overdraft check is
//! written as `TM_GTE(src, amount)` and the balance updates as
//! `TM_INC`/`TM_DEC`; baselines transparently delegate these to plain
//! reads and writes, giving the "base" columns of Table 3.
//!
//! Invariant: total money is conserved.

use crate::driver::{
    run_fixed_work, run_for_duration, run_for_duration_observed, run_for_duration_sampled,
    RunResult,
};
use semtm_core::util::SplitMix64;
use semtm_core::{Abort, Addr, SamplePoint, Stm, TArray, Tx};
use std::time::Duration;

/// Bank configuration.
#[derive(Clone, Copy, Debug)]
pub struct BankConfig {
    /// Number of accounts.
    pub accounts: usize,
    /// Initial balance per account.
    pub initial_balance: i64,
    /// Transfers attempted per transaction (the paper's "at most 10").
    pub transfers_per_tx: usize,
    /// Maximum transfer amount (uniform in `1..=max_amount`).
    pub max_amount: i64,
    /// Per-mille probability that a transaction additionally audits one
    /// random account with a plain read (produces the small residual
    /// read/promote counts visible in Table 3's semantic Bank column).
    pub audit_per_mille: u32,
    /// Contention skew: when nonzero, half of all transfer endpoints are
    /// drawn from the first `skew_accounts` accounts instead of uniformly,
    /// concentrating conflicts on a known-hot set (used to exercise the
    /// flight recorder's hot-address sketch). `0` keeps the paper's
    /// uniform draw.
    pub skew_accounts: usize,
    /// Line-stripe the account array ([`TArray::new_striped`]): one
    /// account per cache line, so accounts never false-share a line and,
    /// under a sharded commit clock, spread across shards. Costs 16× the
    /// heap words.
    pub padded: bool,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            accounts: 64,
            initial_balance: 1_000,
            transfers_per_tx: 10,
            max_amount: 100,
            audit_per_mille: 50,
            skew_accounts: 0,
            padded: false,
        }
    }
}

/// Shared bank state over a transactional heap.
pub struct Bank {
    accounts: TArray<i64>,
    config: BankConfig,
}

impl Bank {
    /// Allocate and initialise the accounts on `stm`'s heap.
    pub fn new(stm: &Stm, config: BankConfig) -> Bank {
        let accounts = if config.padded {
            TArray::new_striped(stm, config.accounts, config.initial_balance)
        } else {
            TArray::new(stm, config.accounts, config.initial_balance)
        };
        Bank { accounts, config }
    }

    /// Total money that must be conserved.
    pub fn expected_total(&self) -> i64 {
        self.config.accounts as i64 * self.config.initial_balance
    }

    /// One workload transaction: up to `transfers_per_tx` guarded
    /// transfers (and occasionally an audit read). Returns the number of
    /// transfers that passed the overdraft check.
    pub fn transfer_tx(&self, stm: &Stm, rng: &mut SplitMix64) -> usize {
        let n = self.config.accounts;
        // Pre-draw the plan so the body is deterministic across retries.
        let mut plan = [(0usize, 0usize, 0i64); 16];
        let count = self.config.transfers_per_tx.min(plan.len());
        let hot = self.config.skew_accounts.min(n);
        let draw = |rng: &mut SplitMix64| {
            if hot > 0 && rng.chance(50) {
                rng.index(hot)
            } else {
                rng.index(n)
            }
        };
        for slot in plan.iter_mut().take(count) {
            let src = draw(rng);
            let mut dst = draw(rng);
            if dst == src {
                dst = (dst + 1) % n;
            }
            *slot = (
                src,
                dst,
                1 + rng.below(self.config.max_amount as u64) as i64,
            );
        }
        let audit = if rng.below(1000) < self.config.audit_per_mille as u64 {
            Some(rng.index(n))
        } else {
            None
        };
        stm.atomic(|tx| {
            let mut done = 0usize;
            for &(src, dst, amount) in plan.iter().take(count) {
                done += self.transfer(tx, src, dst, amount)? as usize;
            }
            if let Some(acct) = audit {
                let _ = self.accounts.read(tx, acct)?;
            }
            Ok(done)
        })
    }

    /// A single guarded transfer inside an open transaction.
    pub fn transfer(
        &self,
        tx: &mut Tx<'_>,
        src: usize,
        dst: usize,
        amount: i64,
    ) -> Result<bool, Abort> {
        // Overdraft check: `balance >= amount` — one semantic TM_GTE.
        if !tx.gte(self.accounts.addr(src), amount)? {
            return Ok(false);
        }
        tx.dec(self.accounts.addr(src), amount)?;
        tx.inc(self.accounts.addr(dst), amount)?;
        Ok(true)
    }

    /// Heap address of account `i` — lets telemetry consumers map the
    /// flight recorder's attributed conflict addresses back to accounts.
    pub fn account_addr(&self, i: usize) -> Addr {
        self.accounts.addr(i)
    }

    /// Non-transactional sum of all balances (quiescent verification).
    pub fn total_now(&self, stm: &Stm) -> i64 {
        (0..self.config.accounts)
            .map(|i| self.accounts.read_now(stm, i))
            .sum()
    }

    /// Check conservation of money and non-negativity of balances.
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        let total = self.total_now(stm);
        if total != self.expected_total() {
            return Err(format!(
                "money not conserved: {total} != {}",
                self.expected_total()
            ));
        }
        for i in 0..self.config.accounts {
            let b = self.accounts.read_now(stm, i);
            if b < 0 {
                return Err(format!("account {i} overdrawn: {b}"));
            }
        }
        Ok(())
    }
}

/// Measured run for the figure harness: `threads` workers for `duration`.
pub fn run(
    stm: &Stm,
    config: BankConfig,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> RunResult {
    let bank = Bank::new(stm, config);
    let r = run_for_duration(stm, threads, duration, seed, |_tid, rng| {
        bank.transfer_tx(stm, rng);
    });
    bank.verify(stm).expect("bank invariant violated");
    r
}

/// Fixed-work run: exactly `total_ops` transfer transactions split
/// across `threads`. Deterministic operation count, so tests can assert
/// the exact accounting identity `stats.commits == total_ops` (the bank
/// pre-populates its accounts non-transactionally: no setup commits).
pub fn run_fixed(
    stm: &Stm,
    config: BankConfig,
    threads: usize,
    total_ops: u64,
    seed: u64,
) -> RunResult {
    let bank = Bank::new(stm, config);
    let r = run_fixed_work(stm, threads, total_ops, seed, |_tid, _i, rng| {
        bank.transfer_tx(stm, rng);
    });
    bank.verify(stm).expect("bank invariant violated");
    r
}

/// Like [`run`], but additionally samples throughput/abort-rate every
/// `sample_every` (the telemetry time-series export).
pub fn run_sampled(
    stm: &Stm,
    config: BankConfig,
    threads: usize,
    duration: Duration,
    sample_every: Duration,
    seed: u64,
) -> (RunResult, Vec<SamplePoint>) {
    let bank = Bank::new(stm, config);
    let out = run_for_duration_sampled(stm, threads, duration, sample_every, seed, |_tid, rng| {
        bank.transfer_tx(stm, rng);
    });
    bank.verify(stm).expect("bank invariant violated");
    out
}

/// Like [`run`], but hands every sample to `observe` while the run is in
/// flight (the live-dashboard hook; the callback may also inspect
/// `stm.telemetry()` for hot addresses and spans).
pub fn run_observed(
    stm: &Stm,
    config: BankConfig,
    threads: usize,
    duration: Duration,
    sample_every: Duration,
    seed: u64,
    observe: impl FnMut(Duration, &SamplePoint),
) -> (RunResult, Vec<SamplePoint>) {
    let bank = Bank::new(stm, config);
    let out = run_for_duration_observed(
        stm,
        threads,
        duration,
        sample_every,
        seed,
        |_tid, rng| {
            bank.transfer_tx(stm, rng);
        },
        observe,
    );
    bank.verify(stm).expect("bank invariant violated");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 12).orec_count(1 << 8))
    }

    #[test]
    fn transfers_conserve_money_single_thread() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let bank = Bank::new(&s, BankConfig::default());
            let mut rng = SplitMix64::new(11);
            for _ in 0..50 {
                bank.transfer_tx(&s, &mut rng);
            }
            bank.verify(&s).unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }

    #[test]
    fn overdraft_check_blocks_insufficient_transfers() {
        let s = stm(Algorithm::SNOrec);
        let bank = Bank::new(
            &s,
            BankConfig {
                accounts: 2,
                initial_balance: 10,
                ..BankConfig::default()
            },
        );
        let moved = s.atomic(|tx| bank.transfer(tx, 0, 1, 50));
        assert!(!moved, "transfer above balance must be skipped");
        let moved = s.atomic(|tx| bank.transfer(tx, 0, 1, 10));
        assert!(moved, "transfer of exactly the balance is allowed");
        assert_eq!(bank.total_now(&s), 20);
    }

    #[test]
    fn concurrent_run_conserves_money_all_algorithms() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let r = run(
                &s,
                BankConfig {
                    accounts: 16,
                    ..BankConfig::default()
                },
                4,
                Duration::from_millis(60),
                3,
            );
            assert!(r.total_ops > 0, "{alg}");
        }
    }

    #[test]
    fn skewed_run_ranks_hot_accounts_first_in_hot_addresses() {
        use semtm_core::TelemetryLevel;
        // Concentrate half of all transfer endpoints on 4 of 64 accounts
        // and let 4 threads fight over them; the flight recorder's
        // hot-address sketch must rank the skew targets at the top.
        let skew = 4usize;
        let cfg = BankConfig {
            accounts: 64,
            skew_accounts: skew,
            ..BankConfig::default()
        };
        let s = Stm::new(
            StmConfig::new(Algorithm::SNOrec)
                .heap_words(1 << 12)
                .telemetry(TelemetryLevel::Spans),
        );
        let bank = Bank::new(&s, cfg);
        let hot_addrs: Vec<_> = (0..skew).map(|i| bank.account_addr(i)).collect();
        let r = run_for_duration(&s, 4, Duration::from_millis(120), 9, |_tid, rng| {
            bank.transfer_tx(&s, rng);
        });
        bank.verify(&s).expect("bank invariant violated");
        assert!(r.stats.conflict_aborts() > 0, "skewed run must conflict");
        let ranked = s.telemetry().hot_addresses();
        assert!(
            !ranked.is_empty(),
            "attributed conflicts must fill the sketch"
        );
        assert!(
            hot_addrs.contains(&ranked[0].0),
            "top-ranked address {:?} should be one of the skew targets {:?}; ranking: {:?}",
            ranked[0].0,
            hot_addrs,
            &ranked[..ranked.len().min(8)],
        );
    }

    #[test]
    fn padded_bank_conserves_money_under_sharded_clock() {
        // The ablation's "sharded+padded" cell: striped accounts on a
        // 16-shard commit clock, every algorithm, concurrent run.
        for alg in Algorithm::ALL {
            let s = Stm::new(
                StmConfig::new(alg)
                    .heap_words(1 << 14)
                    .orec_count(1 << 8)
                    .clock_shards(16),
            );
            let cfg = BankConfig {
                accounts: 16,
                padded: true,
                ..BankConfig::default()
            };
            let r = run(&s, cfg, 4, Duration::from_millis(60), 7);
            assert!(r.total_ops > 0, "{alg}");
        }
    }

    #[test]
    fn semantic_mode_reports_cmps_and_incs() {
        let s = stm(Algorithm::SNOrec);
        let bank = Bank::new(&s, BankConfig::default());
        let mut rng = SplitMix64::new(5);
        for _ in 0..20 {
            bank.transfer_tx(&s, &mut rng);
        }
        let st = s.stats();
        assert!(st.cmps_per_tx() > 5.0, "overdraft checks are compares");
        assert!(st.incs_per_tx() > 5.0, "balance updates are increments");
        assert!(st.reads_per_tx() < 1.0, "only rare audit reads remain");
    }

    #[test]
    fn base_mode_reports_reads_and_writes() {
        let s = stm(Algorithm::NOrec);
        let bank = Bank::new(&s, BankConfig::default());
        let mut rng = SplitMix64::new(5);
        for _ in 0..20 {
            bank.transfer_tx(&s, &mut rng);
        }
        let st = s.stats();
        assert!(st.reads_per_tx() > 10.0);
        assert!(st.writes_per_tx() > 5.0);
        assert_eq!(st.cmps, 0);
        assert_eq!(st.incs, 0);
    }
}
