//! LRU-Cache micro-benchmark (paper §7.1).
//!
//! "This benchmark simulates an m × n cache with least-frequently-used
//! replacement policy. The cache uses m cache lines, and each line
//! contains n buckets. Each bucket stores both the data and the hit
//! frequency. Each transaction either sets or looks up multiple entries
//! in the cache."
//!
//! Tag matching probes a whole line with `TM_EQ` checks and bumps the
//! frequency counter with `TM_INC` — per Table 3, ~93 % of the baseline's
//! reads turn into compares; the remaining plain reads are the
//! frequency scan used to pick a victim on a miss-set.

use crate::driver::{run_fixed_work, run_for_duration, RunResult};
use semtm_core::util::SplitMix64;
use semtm_core::{Abort, CmpOp, Stm, TArray, Tx};
use std::time::Duration;

/// LRU cache configuration.
#[derive(Clone, Copy, Debug)]
pub struct LruConfig {
    /// Number of cache lines (m).
    pub lines: usize,
    /// Buckets per line (n, the set associativity).
    pub ways: usize,
    /// Entries touched per transaction.
    pub ops_per_tx: usize,
    /// Percent of operations that are lookups (the rest are sets).
    pub lookup_pct: u32,
    /// Key universe size.
    pub key_space: u64,
}

impl Default for LruConfig {
    fn default() -> Self {
        LruConfig {
            lines: 256,
            ways: 8,
            ops_per_tx: 8,
            lookup_pct: 90,
            key_space: 1 << 13,
        }
    }
}

/// Set-associative software cache over the transactional heap.
///
/// Per bucket: `tags[line*ways + way]` (0 = empty), `data[..]`,
/// `freq[..]` (hit counter, the replacement heuristic).
pub struct LruCache {
    tags: TArray<i64>,
    data: TArray<i64>,
    freq: TArray<i64>,
    config: LruConfig,
}

impl LruCache {
    /// Allocate an empty cache.
    pub fn new(stm: &Stm, config: LruConfig) -> LruCache {
        let cells = config.lines * config.ways;
        LruCache {
            tags: TArray::new(stm, cells, 0),
            data: TArray::new(stm, cells, 0),
            freq: TArray::new(stm, cells, 0),
            config,
        }
    }

    #[inline]
    fn line_of(&self, key: i64) -> usize {
        semtm_core::util::hash_u32(key as u32) as usize % self.config.lines
    }

    /// Look `key` up; on a hit, bump its frequency and return its data.
    /// The whole tag probe is semantic (`TM_EQ` per way).
    pub fn lookup(&self, tx: &mut Tx<'_>, key: i64) -> Result<Option<i64>, Abort> {
        let base = self.line_of(key) * self.config.ways;
        for way in 0..self.config.ways {
            if tx.cmp(self.tags.addr(base + way), CmpOp::Eq, key)? {
                tx.inc(self.freq.addr(base + way), 1)?;
                let v = tx.read(self.data.addr(base + way))?;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    /// Install (or refresh) `key -> value`. On a miss the
    /// least-frequently-used way is evicted — the frequency scan needs
    /// actual values, so it stays on plain reads (the ~7 % residue of
    /// Table 3).
    pub fn set(&self, tx: &mut Tx<'_>, key: i64, value: i64) -> Result<(), Abort> {
        let base = self.line_of(key) * self.config.ways;
        // Hit path: probe by tag, all semantic.
        for way in 0..self.config.ways {
            if tx.cmp(self.tags.addr(base + way), CmpOp::Eq, key)? {
                tx.write(self.data.addr(base + way), value)?;
                tx.inc(self.freq.addr(base + way), 1)?;
                return Ok(());
            }
        }
        // Miss: pick the LFU victim (empty ways have freq 0 and win).
        let mut victim = 0usize;
        let mut victim_freq = i64::MAX;
        for way in 0..self.config.ways {
            let f = tx.read(self.freq.addr(base + way))?;
            if f < victim_freq {
                victim_freq = f;
                victim = way;
            }
        }
        tx.write(self.tags.addr(base + victim), key)?;
        tx.write(self.data.addr(base + victim), value)?;
        tx.write(self.freq.addr(base + victim), 1)?;
        Ok(())
    }

    /// One workload transaction: a batch of lookups/sets.
    pub fn workload_tx(&self, stm: &Stm, rng: &mut SplitMix64) {
        let mut plan: Vec<(bool, i64)> = Vec::with_capacity(self.config.ops_per_tx);
        for _ in 0..self.config.ops_per_tx {
            let key = 1 + rng.below(self.config.key_space) as i64;
            plan.push((rng.below(100) < self.config.lookup_pct as u64, key));
        }
        stm.atomic(|tx| {
            for &(is_lookup, key) in &plan {
                if is_lookup {
                    let _ = self.lookup(tx, key)?;
                } else {
                    self.set(tx, key, key * 3)?;
                }
            }
            Ok(())
        });
    }

    /// Quiescent integrity: no line holds the same non-zero tag twice,
    /// every occupied bucket's data matches the `key * 3` convention of
    /// the workload, and frequencies are non-negative.
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        for line in 0..self.config.lines {
            let base = line * self.config.ways;
            for w1 in 0..self.config.ways {
                let t1 = self.tags.read_now(stm, base + w1);
                if t1 == 0 {
                    continue;
                }
                if self.data.read_now(stm, base + w1) != t1 * 3 {
                    return Err(format!("line {line} way {w1}: data mismatch for tag {t1}"));
                }
                if self.freq.read_now(stm, base + w1) < 0 {
                    return Err(format!("line {line} way {w1}: negative frequency"));
                }
                for w2 in (w1 + 1)..self.config.ways {
                    if self.tags.read_now(stm, base + w2) == t1 {
                        return Err(format!("line {line}: duplicate tag {t1}"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Measured run for the figure harness.
pub fn run(
    stm: &Stm,
    config: LruConfig,
    threads: usize,
    duration: Duration,
    seed: u64,
) -> RunResult {
    let cache = warmed_cache(stm, config, seed);
    let mut r = run_for_duration(stm, threads, duration, seed, |_tid, rng| {
        cache.workload_tx(stm, rng);
    });
    cache.verify(stm).expect("lru cache integrity violated");
    r.setup_commits = (config.lines * config.ways) as u64;
    r
}

/// Fixed-work run: exactly `total_ops` workload transactions split
/// across `threads`. The warm-up phase commits one transaction per
/// cache bucket, reported via [`RunResult::setup_commits`] so the
/// runtime-wide identity `stats.commits == total_ops + setup_commits`
/// stays exact.
pub fn run_fixed(
    stm: &Stm,
    config: LruConfig,
    threads: usize,
    total_ops: u64,
    seed: u64,
) -> RunResult {
    let cache = warmed_cache(stm, config, seed);
    let mut r = run_fixed_work(stm, threads, total_ops, seed, |_tid, _i, rng| {
        cache.workload_tx(stm, rng);
    });
    cache.verify(stm).expect("lru cache integrity violated");
    r.setup_commits = (config.lines * config.ways) as u64;
    r
}

/// Warm the cache so lookups hit (and produce `inc` traffic): one
/// transactional `set` per bucket, i.e. `lines * ways` setup commits.
fn warmed_cache(stm: &Stm, config: LruConfig, seed: u64) -> LruCache {
    let cache = LruCache::new(stm, config);
    let mut rng = SplitMix64::new(seed ^ 0xCAFE);
    for _ in 0..(config.lines * config.ways) {
        let key = 1 + rng.below(config.key_space) as i64;
        stm.atomic(|tx| cache.set(tx, key, key * 3));
    }
    cache
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 16).orec_count(1 << 10))
    }

    fn small_cfg() -> LruConfig {
        LruConfig {
            lines: 8,
            ways: 4,
            ..LruConfig::default()
        }
    }

    #[test]
    fn set_then_lookup_hits() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let c = LruCache::new(&s, small_cfg());
            s.atomic(|tx| c.set(tx, 5, 15));
            let got = s.atomic(|tx| c.lookup(tx, 5));
            assert_eq!(got, Some(15), "{alg}");
            let miss = s.atomic(|tx| c.lookup(tx, 6));
            assert_eq!(miss, None, "{alg}");
        }
    }

    #[test]
    fn hit_bumps_frequency() {
        let s = stm(Algorithm::SNOrec);
        let c = LruCache::new(&s, small_cfg());
        s.atomic(|tx| c.set(tx, 5, 15));
        for _ in 0..3 {
            s.atomic(|tx| c.lookup(tx, 5));
        }
        let base = c.line_of(5) * c.config.ways;
        let mut found = false;
        for w in 0..c.config.ways {
            if c.tags.read_now(&s, base + w) == 5 {
                assert_eq!(c.freq.read_now(&s, base + w), 4, "1 set + 3 hits");
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn eviction_picks_least_frequent() {
        let s = stm(Algorithm::STl2);
        let cfg = LruConfig {
            lines: 1,
            ways: 2,
            ..LruConfig::default()
        };
        let c = LruCache::new(&s, cfg);
        s.atomic(|tx| c.set(tx, 101, 303));
        s.atomic(|tx| c.set(tx, 202, 606));
        // Heat up 101 so 202 becomes the LFU victim.
        for _ in 0..5 {
            s.atomic(|tx| c.lookup(tx, 101));
        }
        s.atomic(|tx| c.set(tx, 303, 909)); // evicts 202
        assert_eq!(s.atomic(|tx| c.lookup(tx, 101)), Some(303));
        assert_eq!(s.atomic(|tx| c.lookup(tx, 202)), None);
        assert_eq!(s.atomic(|tx| c.lookup(tx, 303)), Some(909));
        c.verify(&s).unwrap();
    }

    #[test]
    fn semantic_mode_mostly_compares() {
        let s = stm(Algorithm::SNOrec);
        let c = LruCache::new(&s, LruConfig::default());
        let mut rng = SplitMix64::new(21);
        for _ in 0..50 {
            c.workload_tx(&s, &mut rng);
        }
        let st = s.stats();
        let total = st.reads + st.cmps + st.cmp_pairs;
        assert!(total > 0);
        let cmp_ratio = (st.cmps + st.cmp_pairs) as f64 / total as f64;
        assert!(
            cmp_ratio > 0.75,
            "most probe traffic must be semantic, got {cmp_ratio:.2}"
        );
    }

    #[test]
    fn concurrent_run_keeps_integrity() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let s = stm(alg);
            let r = run(&s, small_cfg(), 4, Duration::from_millis(60), 33);
            assert!(r.total_ops > 0, "{alg}");
        }
    }
}
