//! Multi-threaded measurement driver shared by all workloads.
//!
//! Two modes, matching the paper's methodology (§7):
//!
//! * **fixed duration** — threads repeatedly execute workload
//!   transactions for a wall-clock interval; reported as *throughput*
//!   (micro-benchmarks: Hashtable, Bank, LRU);
//! * **fixed work** — a given number of workload operations is split
//!   across threads; reported as *execution time* (STAMP applications).
//!
//! Both return a [`RunResult`] carrying the interval's [`StatsSnapshot`],
//! from which abort rates (the right-hand columns of Figures 1 and 2) are
//! derived.

use semtm_core::util::SplitMix64;
use semtm_core::{SamplePoint, Sampler, StatsSnapshot, Stm};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Outcome of one measured run.
#[derive(Clone, Copy, Debug)]
pub struct RunResult {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the measured interval.
    pub elapsed: Duration,
    /// Completed workload operations (top-level transactions).
    pub total_ops: u64,
    /// STM statistics accumulated during the interval.
    pub stats: StatsSnapshot,
    /// Transactions committed while building the workload's initial
    /// state (pre-population, warm-up) *before* the measured interval.
    /// The runtime-wide accounting identity is exact:
    /// `stm.stats().commits == total_ops + setup_commits`.
    pub setup_commits: u64,
}

impl RunResult {
    /// Throughput in thousands of transactions per second (the y-axis of
    /// Figures 1a/1c/1e and 2a).
    pub fn throughput_ktps(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.total_ops as f64 / self.elapsed.as_secs_f64() / 1000.0
        }
    }

    /// Abort percentage over the interval.
    pub fn abort_pct(&self) -> f64 {
        self.stats.abort_pct()
    }
}

/// Run `work(tid, rng)` repeatedly on `threads` threads for `duration`.
/// Each call to `work` should execute exactly one workload transaction.
pub fn run_for_duration(
    stm: &Stm,
    threads: usize,
    duration: Duration,
    seed: u64,
    work: impl Fn(usize, &mut SplitMix64) + Sync,
) -> RunResult {
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let before = stm.stats();
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let stop = &stop;
            let ops = &ops;
            let work = &work;
            s.spawn(move || {
                let mut rng = SplitMix64::new(seed ^ ((tid as u64 + 1) * 0x9E37_79B9));
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    work(tid, &mut rng);
                    local += 1;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            });
        }
        // The scope owner doubles as the timer.
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();
    RunResult {
        threads,
        elapsed,
        total_ops: ops.load(Ordering::Relaxed),
        stats: stm.stats().since(&before),
        setup_commits: 0,
    }
}

/// Like [`run_for_duration`], but the timer thread additionally samples
/// the runtime's statistics every `sample_every`, producing the
/// throughput/abort-rate time series of the paper's figure style (and of
/// any production dashboard). The final partial interval is included, so
/// the series' commit counts sum to the run's commits.
pub fn run_for_duration_sampled(
    stm: &Stm,
    threads: usize,
    duration: Duration,
    sample_every: Duration,
    seed: u64,
    work: impl Fn(usize, &mut SplitMix64) + Sync,
) -> (RunResult, Vec<SamplePoint>) {
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let before = stm.stats();
    let sample_every = sample_every.max(Duration::from_millis(1));
    let start = Instant::now();
    let mut series = Vec::new();
    // Deltas are taken against `before` so the series ignores any earlier
    // traffic on the same Stm, exactly like the RunResult itself.
    let mut sampler = Sampler::new(before);
    std::thread::scope(|s| {
        for tid in 0..threads {
            let stop = &stop;
            let ops = &ops;
            let work = &work;
            s.spawn(move || {
                let mut rng = SplitMix64::new(seed ^ ((tid as u64 + 1) * 0x9E37_79B9));
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    work(tid, &mut rng);
                    local += 1;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            });
        }
        // The scope owner doubles as timer and sampler.
        while start.elapsed() < duration {
            let remaining = duration.saturating_sub(start.elapsed());
            std::thread::sleep(sample_every.min(remaining));
            series.push(sampler.sample(stm.stats()));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();
    // Workers drain their in-flight transaction after `stop`; fold that
    // tail into a final sample so the series sums to the run totals.
    let tail = sampler.sample(stm.stats());
    if tail.commits > 0 || series.is_empty() {
        series.push(tail);
    }
    let result = RunResult {
        threads,
        elapsed,
        total_ops: ops.load(Ordering::Relaxed),
        stats: stm.stats().since(&before),
        setup_commits: 0,
    };
    (result, series)
}

/// Like [`run_for_duration_sampled`], but each sample is additionally
/// handed to `observe` *while the run is in flight* — the hook behind
/// live dashboards, which can also read `stm`'s telemetry (hot
/// addresses, span counts) from inside the callback. The observer runs
/// on the timer thread, so a slow observer stretches the tick, not the
/// workers.
#[allow(clippy::too_many_arguments)]
pub fn run_for_duration_observed(
    stm: &Stm,
    threads: usize,
    duration: Duration,
    sample_every: Duration,
    seed: u64,
    work: impl Fn(usize, &mut SplitMix64) + Sync,
    mut observe: impl FnMut(Duration, &SamplePoint),
) -> (RunResult, Vec<SamplePoint>) {
    let stop = AtomicBool::new(false);
    let ops = AtomicU64::new(0);
    let before = stm.stats();
    let sample_every = sample_every.max(Duration::from_millis(1));
    let start = Instant::now();
    let mut series = Vec::new();
    let mut sampler = Sampler::new(before);
    std::thread::scope(|s| {
        for tid in 0..threads {
            let stop = &stop;
            let ops = &ops;
            let work = &work;
            s.spawn(move || {
                let mut rng = SplitMix64::new(seed ^ ((tid as u64 + 1) * 0x9E37_79B9));
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    work(tid, &mut rng);
                    local += 1;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            });
        }
        while start.elapsed() < duration {
            let remaining = duration.saturating_sub(start.elapsed());
            std::thread::sleep(sample_every.min(remaining));
            let point = sampler.sample(stm.stats());
            observe(start.elapsed(), &point);
            series.push(point);
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed();
    let tail = sampler.sample(stm.stats());
    if tail.commits > 0 || series.is_empty() {
        observe(elapsed, &tail);
        series.push(tail);
    }
    let result = RunResult {
        threads,
        elapsed,
        total_ops: ops.load(Ordering::Relaxed),
        stats: stm.stats().since(&before),
        setup_commits: 0,
    };
    (result, series)
}

/// Split `total_ops` operations across `threads` threads and time the
/// whole batch (STAMP-style execution-time measurement). Operation `i` of
/// the global index space is executed by thread `i % threads`.
pub fn run_fixed_work(
    stm: &Stm,
    threads: usize,
    total_ops: u64,
    seed: u64,
    work: impl Fn(usize, u64, &mut SplitMix64) + Sync,
) -> RunResult {
    let before = stm.stats();
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let work = &work;
            s.spawn(move || {
                let mut rng = SplitMix64::new(seed ^ ((tid as u64 + 1) * 0xC2B2_AE35));
                let mut i = tid as u64;
                while i < total_ops {
                    work(tid, i, &mut rng);
                    i += threads as u64;
                }
            });
        }
    });
    let elapsed = start.elapsed();
    RunResult {
        threads,
        elapsed,
        total_ops,
        stats: stm.stats().since(&before),
        setup_commits: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    #[test]
    fn fixed_work_distributes_all_indices() {
        let stm = Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(1 << 10));
        let a = stm.alloc_cell(0i64);
        let r = run_fixed_work(&stm, 3, 100, 1, |_tid, _i, _rng| {
            stm.atomic(|tx| tx.inc(a, 1));
        });
        assert_eq!(r.total_ops, 100);
        assert_eq!(stm.read_now(a), 100);
        assert_eq!(r.stats.commits, 100);
    }

    #[test]
    fn sampled_run_series_sums_to_totals() {
        let stm = Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(1 << 10));
        let a = stm.alloc_cell(0i64);
        let (r, series) = run_for_duration_sampled(
            &stm,
            2,
            Duration::from_millis(80),
            Duration::from_millis(10),
            7,
            |_tid, _rng| {
                stm.atomic(|tx| tx.inc(a, 1));
            },
        );
        assert!(!series.is_empty());
        assert!(
            series.len() >= 4,
            "80ms / 10ms should yield several samples"
        );
        let sum: u64 = series.iter().map(|p| p.commits).sum();
        assert_eq!(sum, r.stats.commits, "series must cover the whole run");
        let aborts: u64 = series.iter().map(|p| p.conflict_aborts).sum();
        assert_eq!(aborts, r.stats.conflict_aborts());
        for w in series.windows(2) {
            assert!(w[0].t_secs < w[1].t_secs, "timestamps strictly increase");
        }
    }

    #[test]
    fn observed_run_invokes_callback_per_sample() {
        let stm = Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(1 << 10));
        let a = stm.alloc_cell(0i64);
        let mut ticks = 0usize;
        let (r, series) = run_for_duration_observed(
            &stm,
            2,
            Duration::from_millis(60),
            Duration::from_millis(10),
            7,
            |_tid, _rng| {
                stm.atomic(|tx| tx.inc(a, 1));
            },
            |elapsed, point| {
                assert!(elapsed > Duration::ZERO);
                assert!(point.dt_secs > 0.0);
                ticks += 1;
            },
        );
        assert_eq!(ticks, series.len(), "one callback per sample");
        assert!(ticks >= 3, "60ms / 10ms should tick several times");
        let sum: u64 = series.iter().map(|p| p.commits).sum();
        assert_eq!(sum, r.stats.commits);
    }

    #[test]
    fn duration_run_counts_ops_and_stats() {
        let stm = Stm::new(StmConfig::new(Algorithm::Tl2).heap_words(1 << 10));
        let a = stm.alloc_cell(0i64);
        let r = run_for_duration(&stm, 2, Duration::from_millis(50), 7, |_tid, _rng| {
            stm.atomic(|tx| tx.inc(a, 1));
        });
        assert!(r.total_ops > 0);
        assert_eq!(r.stats.commits, r.total_ops);
        assert_eq!(stm.read_now(a) as u64, r.total_ops);
        assert!(r.throughput_ktps() > 0.0);
    }
}
