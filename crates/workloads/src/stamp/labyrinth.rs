//! STAMP **Labyrinth** — a multi-path 3-D maze router (paper §7.1).
//!
//! Threads pull (source, destination) pairs off a work list and connect
//! them through a shared uniform grid with a Lee-style breadth-first
//! expansion. Routing runs on a *private copy* of the grid; only the
//! final path is validated and published transactionally: every path
//! cell is checked to still be empty (`TM_EQ(cell, EMPTY)` — the
//! "isEmpty / isGarbage checks along the routing path" the paper
//! converts to `cmp`s) and then written with the path id.
//!
//! Two variants, matching Figures 1k–1n:
//!
//! * [`Variant::CopyInsideTx`] ("Labyrinth 1") — the grid snapshot and
//!   the BFS expansion run *inside* the transaction body, re-executed on
//!   every retry: long transactions, the configuration the paper
//!   evaluates first;
//! * [`Variant::CopyOutsideTx`] ("Labyrinth 2") — the optimisation of
//!   Ruan et al. \[32\]: snapshot + expansion move *outside* the
//!   transaction, which only validates and publishes the path; on abort
//!   the route is recomputed from a fresh snapshot.

use crate::driver::{run_fixed_work, RunResult};
use semtm_core::util::SplitMix64;
use semtm_core::{Abort, CmpOp, Stm, TArray};

/// Grid cell: free.
pub const EMPTY: i64 = 0;
/// Grid cell: blocked.
pub const WALL: i64 = -1;

/// Which Labyrinth variant to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// "Labyrinth 1": grid copy + expansion inside the transaction.
    CopyInsideTx,
    /// "Labyrinth 2": grid copy + expansion outside the transaction
    /// (Ruan et al. \[32\]).
    CopyOutsideTx,
}

/// Maze configuration.
#[derive(Clone, Copy, Debug)]
pub struct LabyrinthConfig {
    /// Grid width.
    pub x: usize,
    /// Grid height.
    pub y: usize,
    /// Grid depth.
    pub z: usize,
    /// Routing pairs to connect.
    pub pairs: usize,
    /// Percent of cells pre-blocked as walls.
    pub wall_pct: u32,
    /// Copy placement (Labyrinth 1 vs 2).
    pub variant: Variant,
}

impl Default for LabyrinthConfig {
    fn default() -> Self {
        LabyrinthConfig {
            x: 32,
            y: 32,
            z: 3,
            pairs: 64,
            wall_pct: 10,
            variant: Variant::CopyInsideTx,
        }
    }
}

/// The shared maze.
pub struct Labyrinth {
    grid: TArray<i64>,
    config: LabyrinthConfig,
    /// Routing endpoints, fixed at construction.
    pairs: Vec<(usize, usize)>,
}

impl Labyrinth {
    /// Build the grid, carve walls, and draw routing endpoints on empty
    /// cells.
    pub fn new(stm: &Stm, config: LabyrinthConfig, seed: u64) -> Labyrinth {
        let cells = config.x * config.y * config.z;
        let grid = TArray::new(stm, cells, EMPTY);
        let mut rng = SplitMix64::new(seed);
        for i in 0..cells {
            if rng.below(100) < config.wall_pct as u64 {
                grid.write_now(stm, i, WALL);
            }
        }
        let mut pairs = Vec::with_capacity(config.pairs);
        let draw_empty = |rng: &mut SplitMix64| loop {
            let c = rng.index(cells);
            if grid.read_now(stm, c) == EMPTY {
                return c;
            }
        };
        for _ in 0..config.pairs {
            let a = draw_empty(&mut rng);
            let mut b = draw_empty(&mut rng);
            while b == a {
                b = draw_empty(&mut rng);
            }
            pairs.push((a, b));
        }
        Labyrinth {
            grid,
            config,
            pairs,
        }
    }

    /// Quiescent cell value (rendering / inspection).
    pub fn cell_now(&self, stm: &Stm, i: usize) -> i64 {
        self.grid.read_now(stm, i)
    }

    /// Number of routing pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Total number of grid cells.
    pub fn cells(&self) -> usize {
        self.config.x * self.config.y * self.config.z
    }

    fn neighbors(&self, cell: usize, out: &mut [usize; 6]) -> usize {
        let (x, y, z) = (
            cell % self.config.x,
            (cell / self.config.x) % self.config.y,
            cell / (self.config.x * self.config.y),
        );
        let mut n = 0;
        let push = |c: usize, out: &mut [usize; 6], n: &mut usize| {
            out[*n] = c;
            *n += 1;
        };
        if x > 0 {
            push(cell - 1, out, &mut n);
        }
        if x + 1 < self.config.x {
            push(cell + 1, out, &mut n);
        }
        if y > 0 {
            push(cell - self.config.x, out, &mut n);
        }
        if y + 1 < self.config.y {
            push(cell + self.config.x, out, &mut n);
        }
        if z > 0 {
            push(cell - self.config.x * self.config.y, out, &mut n);
        }
        if z + 1 < self.config.z {
            push(cell + self.config.x * self.config.y, out, &mut n);
        }
        n
    }

    /// Non-transactional snapshot of the grid (the "memory copy").
    fn snapshot(&self, stm: &Stm) -> Vec<i64> {
        (0..self.cells())
            .map(|i| self.grid.read_now(stm, i))
            .collect()
    }

    /// Lee expansion on a private snapshot; returns the cell path from
    /// `src` to `dst` (inclusive) if one exists through EMPTY cells.
    fn expand(&self, snap: &[i64], src: usize, dst: usize) -> Option<Vec<usize>> {
        if snap[src] != EMPTY || snap[dst] != EMPTY {
            return None; // an endpoint was grabbed by another path
        }
        let cells = self.cells();
        let mut dist = vec![u32::MAX; cells];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        let mut nbrs = [0usize; 6];
        while let Some(c) = queue.pop_front() {
            if c == dst {
                break;
            }
            let n = self.neighbors(c, &mut nbrs);
            for &nb in &nbrs[..n] {
                if dist[nb] == u32::MAX && snap[nb] == EMPTY {
                    dist[nb] = dist[c] + 1;
                    queue.push_back(nb);
                }
            }
        }
        if dist[dst] == u32::MAX {
            return None;
        }
        // Backtrace.
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            let n = self.neighbors(cur, &mut nbrs);
            let prev = nbrs[..n]
                .iter()
                .copied()
                .find(|&nb| dist[nb] != u32::MAX && dist[nb] + 1 == dist[cur])
                .expect("broken backtrace");
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }

    /// Publish `path` under `id`: semantic emptiness checks plus writes.
    /// Fails with an explicit abort if any cell was grabbed concurrently
    /// (the caller then recomputes the route).
    fn publish(&self, tx: &mut semtm_core::Tx<'_>, path: &[usize], id: i64) -> Result<(), Abort> {
        for &cell in path {
            // isEmpty check — TM_EQ(cell, EMPTY)
            if !self.grid.cmp(tx, cell, CmpOp::Eq, EMPTY)? {
                return Err(Abort::explicit());
            }
        }
        for &cell in path {
            self.grid.write(tx, cell, id)?;
        }
        Ok(())
    }

    /// Route one pair; returns the published path, or `None` if the maze
    /// no longer admits one. `id` must be a unique positive path id.
    pub fn route(&self, stm: &Stm, pair_index: usize, id: i64) -> Option<Vec<usize>> {
        let (src, dst) = self.pairs[pair_index];
        match self.config.variant {
            Variant::CopyInsideTx => {
                // Labyrinth 1: snapshot + expansion re-run on every retry,
                // inside the transaction body.
                stm.atomic(|tx| {
                    let snap = self.snapshot(stm);
                    match self.expand(&snap, src, dst) {
                        None => Ok(None),
                        Some(path) => {
                            // An abort here retries the whole body, which
                            // re-snapshots and re-expands.
                            self.publish(tx, &path, id)?;
                            Ok(Some(path))
                        }
                    }
                })
            }
            Variant::CopyOutsideTx => {
                // Labyrinth 2: snapshot + expansion hoisted out; the
                // transaction only validates + publishes.
                loop {
                    let snap = self.snapshot(stm);
                    let path = self.expand(&snap, src, dst)?;
                    let published = stm.try_atomic(|tx| {
                        self.publish(tx, &path, id)?;
                        Ok(())
                    });
                    if published.is_ok() {
                        return Some(path);
                    }
                    // Any abort (conflict or stolen cell): re-route.
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Quiescent integrity over a set of published paths: each path's
    /// cells carry its id, ids never overlap, and consecutive path cells
    /// are grid-adjacent.
    pub fn verify(&self, stm: &Stm, routed: &[(i64, Vec<usize>)]) -> Result<(), String> {
        let mut owner = std::collections::HashMap::new();
        for (id, path) in routed {
            let mut nbrs = [0usize; 6];
            for (i, &cell) in path.iter().enumerate() {
                let v = self.grid.read_now(stm, cell);
                if v != *id {
                    return Err(format!("cell {cell} of path {id} holds {v}"));
                }
                if let Some(prev) = owner.insert(cell, *id) {
                    return Err(format!("cell {cell} owned by both {prev} and {id}"));
                }
                if i > 0 {
                    let n = self.neighbors(cell, &mut nbrs);
                    if !nbrs[..n].contains(&path[i - 1]) {
                        return Err(format!("path {id} not contiguous at {cell}"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Measured run: route every pair, split across threads (fixed work,
/// Figures 1k–1n). Returns the run result; integrity is asserted.
pub fn run(stm: &Stm, config: LabyrinthConfig, threads: usize, seed: u64) -> RunResult {
    let maze = Labyrinth::new(stm, config, seed);
    let routed = std::sync::Mutex::new(Vec::new());
    let r = run_fixed_work(stm, threads, config.pairs as u64, seed, |_tid, i, _rng| {
        let id = i as i64 + 1;
        if let Some(path) = maze.route(stm, i as usize, id) {
            routed.lock().unwrap().push((id, path));
        }
    });
    let routed = routed.into_inner().unwrap();
    maze.verify(stm, &routed)
        .expect("labyrinth integrity violated");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 14).orec_count(1 << 10))
    }

    fn open_maze(variant: Variant) -> LabyrinthConfig {
        LabyrinthConfig {
            x: 8,
            y: 8,
            z: 2,
            pairs: 6,
            wall_pct: 0,
            variant,
        }
    }

    #[test]
    fn routes_connect_endpoints_both_variants() {
        for variant in [Variant::CopyInsideTx, Variant::CopyOutsideTx] {
            for alg in [Algorithm::SNOrec, Algorithm::STl2] {
                let s = stm(alg);
                let maze = Labyrinth::new(&s, open_maze(variant), 5);
                let mut routed = Vec::new();
                for i in 0..maze.pairs.len() {
                    if let Some(p) = maze.route(&s, i, i as i64 + 1) {
                        let (src, dst) = maze.pairs[i];
                        assert_eq!(p[0], src);
                        assert_eq!(*p.last().unwrap(), dst);
                        routed.push((i as i64 + 1, p));
                    }
                }
                assert!(!routed.is_empty(), "{alg} {variant:?}");
                maze.verify(&s, &routed).unwrap();
            }
        }
    }

    #[test]
    fn expansion_respects_walls() {
        let s = stm(Algorithm::SNOrec);
        let cfg = LabyrinthConfig {
            x: 5,
            y: 1,
            z: 1,
            pairs: 0,
            wall_pct: 0,
            variant: Variant::CopyOutsideTx,
        };
        let maze = Labyrinth::new(&s, cfg, 1);
        maze.grid.write_now(&s, 2, WALL); // block the only corridor
        let snap = maze.snapshot(&s);
        assert_eq!(maze.expand(&snap, 0, 4), None);
        maze.grid.write_now(&s, 2, EMPTY);
        let snap = maze.snapshot(&s);
        assert_eq!(maze.expand(&snap, 0, 4), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn published_paths_never_overlap_under_concurrency() {
        for variant in [Variant::CopyInsideTx, Variant::CopyOutsideTx] {
            let s = stm(Algorithm::STl2);
            let cfg = LabyrinthConfig {
                x: 12,
                y: 12,
                z: 2,
                pairs: 16,
                wall_pct: 5,
                variant,
            };
            let r = run(&s, cfg, 4, 33);
            assert_eq!(r.total_ops, 16, "{variant:?}");
        }
    }

    #[test]
    fn semantic_checks_are_compares() {
        let s = stm(Algorithm::SNOrec);
        let maze = Labyrinth::new(&s, open_maze(Variant::CopyOutsideTx), 9);
        for i in 0..maze.pairs.len() {
            maze.route(&s, i, i as i64 + 1);
        }
        let st = s.stats();
        assert!(st.cmps > 0, "emptiness checks must be semantic");
        assert_eq!(st.reads, 0, "publication does no plain reads");
        assert!(st.writes > 0);
    }
}
