//! STAMP **Vacation** — a travel-reservation OLTP emulation (paper §3.1
//! Algorithm 4 and §7.1).
//!
//! An in-memory database of three relations (cars, flights, rooms) plus a
//! customer relation, each indexed by a transactional red-black tree
//! ([`RbMap`]). Client sessions run as coarse transactions:
//!
//! * **make-reservation** — queries `queries_per_tx` random offers per
//!   relation looking for the best-priced available one (the checks
//!   `numFree > 0` and `price > max_price` are the paper's semantic
//!   `TM_GT`s), then books it: `TM_INC(numFree, -1)`,
//!   `TM_INC(numUsed, +1)` plus a sanity re-read that *promotes* the
//!   increments — reproducing the paper's observation that "almost all
//!   the inc operations were promoted ... because of an additional
//!   sanity check";
//! * **delete-customer** — releases all of a customer's bookings;
//! * **update-tables** — price changes and capacity additions.
//!
//! Invariants: for every offer `numFree + numUsed == numTotal`,
//! `numFree >= 0`, and the sum of booked units equals the length of all
//! customers' reservation lists.

use super::rbtree::RbMap;
use crate::driver::{run_fixed_work, RunResult};
use semtm_core::util::SplitMix64;
use semtm_core::{Abort, Addr, Stm, Tx};

/// Offer record layout (5 heap words).
const R_ID: usize = 0;
const R_USED: usize = 1;
const R_FREE: usize = 2;
const R_TOTAL: usize = 3;
const R_PRICE: usize = 4;

/// Customer reservation-list node (3 heap words): relation, offer id, next.
const L_REL: usize = 0;
const L_OFFER: usize = 1;
const L_NEXT: usize = 2;

const NIL: i64 = -1;

#[inline]
fn field(block: i64, f: usize) -> Addr {
    Addr::from_index(block as usize + f)
}

/// Vacation configuration (mirrors STAMP's `-n -q -u -r -t` knobs).
#[derive(Clone, Copy, Debug)]
pub struct VacationConfig {
    /// Offers per relation.
    pub relations: usize,
    /// Offers examined per reservation transaction (STAMP `-n`).
    pub queries_per_tx: usize,
    /// Percent of sessions that are user reservations (STAMP `-u`); the
    /// remainder split evenly between delete-customer and update-tables.
    pub user_pct: u32,
    /// Initial capacity per offer.
    pub initial_capacity: i64,
    /// Customer-id universe.
    pub customers: usize,
}

impl Default for VacationConfig {
    fn default() -> Self {
        VacationConfig {
            relations: 256,
            queries_per_tx: 10,
            user_pct: 90,
            initial_capacity: 20,
            customers: 128,
        }
    }
}

/// Relation selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relation {
    /// Car rentals.
    Car = 0,
    /// Flights.
    Flight = 1,
    /// Hotel rooms.
    Room = 2,
}

impl Relation {
    const ALL: [Relation; 3] = [Relation::Car, Relation::Flight, Relation::Room];
}

/// The shared in-memory reservation database.
pub struct Vacation {
    tables: [RbMap; 3],
    customers: RbMap,
    config: VacationConfig,
}

impl Vacation {
    /// Build and populate the database. Offers are inserted in shuffled
    /// id order (matches STAMP's randomised population; the RB tree is
    /// balanced regardless).
    pub fn new(stm: &Stm, config: VacationConfig) -> Vacation {
        let v = Vacation {
            tables: [RbMap::new(stm), RbMap::new(stm), RbMap::new(stm)],
            customers: RbMap::new(stm),
            config,
        };
        let mut rng = SplitMix64::new(0x7AC0);
        for rel in Relation::ALL {
            let mut ids: Vec<i64> = (1..=config.relations as i64).collect();
            // Fisher–Yates shuffle.
            for i in (1..ids.len()).rev() {
                ids.swap(i, rng.index(i + 1));
            }
            for id in ids {
                let offer = stm.alloc(5);
                stm.write_now(offer.offset(R_ID), id);
                stm.write_now(offer.offset(R_USED), 0);
                stm.write_now(offer.offset(R_FREE), config.initial_capacity);
                stm.write_now(offer.offset(R_TOTAL), config.initial_capacity);
                stm.write_now(offer.offset(R_PRICE), 100 + rng.below(400) as i64);
                stm.atomic(|tx| v.tables[rel as usize].insert(stm, tx, id, offer.index() as i64));
            }
        }
        v
    }

    /// Algorithm 4: scan `ids`, keeping the priciest offer that still has
    /// a free unit, then book it for `customer`. Returns whether a
    /// booking was made.
    pub fn make_reservation(
        &self,
        stm: &Stm,
        tx: &mut Tx<'_>,
        rel: Relation,
        customer: i64,
        ids: &[i64],
    ) -> Result<bool, Abort> {
        let table = &self.tables[rel as usize];
        let mut max_price = -1i64;
        let mut best: Option<i64> = None;
        for &id in ids {
            let Some(offer) = table.get(tx, id)? else {
                continue;
            };
            // TM_GT(res.numFree, 0)
            if tx.gt(field(offer, R_FREE), 0)? {
                // TM_GT(res.price, max_price)
                if tx.gt(field(offer, R_PRICE), max_price)? {
                    max_price = tx.read(field(offer, R_PRICE))?;
                    best = Some(offer);
                }
            }
        }
        let Some(offer) = best else {
            return Ok(false);
        };
        // TM_INC(res.numFree, -1) and the used-counter mirror.
        tx.inc(field(offer, R_FREE), -1)?;
        tx.inc(field(offer, R_USED), 1)?;
        // STAMP's reservation sanity check (reservation_info compare):
        // re-reads the counters, which promotes both increments.
        if tx.read(field(offer, R_FREE))? < 0 || tx.read(field(offer, R_USED))? <= 0 {
            return Err(Abort::explicit());
        }
        // Record the booking on the customer's list.
        let offer_id = tx.read(field(offer, R_ID))?;
        self.add_to_customer(stm, tx, customer, rel, offer_id)?;
        Ok(true)
    }

    fn add_to_customer(
        &self,
        stm: &Stm,
        tx: &mut Tx<'_>,
        customer: i64,
        rel: Relation,
        offer_id: i64,
    ) -> Result<(), Abort> {
        let head = self.customers.get(tx, customer)?.unwrap_or(NIL);
        let node = stm.alloc(3);
        stm.write_now(node.offset(L_REL), rel as i64);
        stm.write_now(node.offset(L_OFFER), offer_id);
        stm.write_now(node.offset(L_NEXT), NIL);
        tx.write(node.offset(L_NEXT), head)?;
        self.customers
            .insert(stm, tx, customer, node.index() as i64)?;
        Ok(())
    }

    /// Release all of `customer`'s bookings and drop the customer row.
    /// Returns the number of released units.
    pub fn delete_customer(&self, tx: &mut Tx<'_>, customer: i64) -> Result<usize, Abort> {
        let Some(mut node) = self.customers.remove(tx, customer)? else {
            return Ok(0);
        };
        let mut released = 0;
        while node != NIL {
            let rel = tx.read(field(node, L_REL))? as usize;
            let offer_id = tx.read(field(node, L_OFFER))?;
            if let Some(offer) = self.tables[rel].get(tx, offer_id)? {
                tx.inc(field(offer, R_FREE), 1)?;
                tx.inc(field(offer, R_USED), -1)?;
                released += 1;
            }
            node = tx.read(field(node, L_NEXT))?;
        }
        Ok(released)
    }

    /// Update sessions: for each id either re-price the offer or add one
    /// unit of capacity.
    pub fn update_tables(
        &self,
        tx: &mut Tx<'_>,
        rel: Relation,
        ids: &[i64],
        rng_price: i64,
    ) -> Result<(), Abort> {
        let table = &self.tables[rel as usize];
        for (i, &id) in ids.iter().enumerate() {
            let Some(offer) = table.get(tx, id)? else {
                continue;
            };
            if i % 2 == 0 {
                tx.write(field(offer, R_PRICE), 100 + (rng_price + id) % 400)?;
            } else {
                tx.inc(field(offer, R_TOTAL), 1)?;
                tx.inc(field(offer, R_FREE), 1)?;
            }
        }
        Ok(())
    }

    /// One client session (the top-level transaction of the benchmark).
    pub fn session(&self, stm: &Stm, rng: &mut SplitMix64) {
        let roll = rng.below(100) as u32;
        let n = self.config.queries_per_tx;
        let mut ids: Vec<i64> = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(1 + rng.below(self.config.relations as u64) as i64);
        }
        if roll < self.config.user_pct {
            let customer = 1 + rng.below(self.config.customers as u64) as i64;
            let rel = Relation::ALL[rng.index(3)];
            stm.atomic(|tx| self.make_reservation(stm, tx, rel, customer, &ids));
        } else if roll < self.config.user_pct + (100 - self.config.user_pct) / 2 {
            let customer = 1 + rng.below(self.config.customers as u64) as i64;
            stm.atomic(|tx| self.delete_customer(tx, customer));
        } else {
            let rel = Relation::ALL[rng.index(3)];
            let price_seed = rng.below(1 << 20) as i64;
            stm.atomic(|tx| self.update_tables(tx, rel, &ids, price_seed));
        }
    }

    /// Quiescent invariant check (see module docs).
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        let mut total_used = 0i64;
        for rel in Relation::ALL {
            let mut err = None;
            self.tables[rel as usize].for_each_now(stm, |id, offer| {
                let used = stm.read_now(field(offer, R_USED));
                let free = stm.read_now(field(offer, R_FREE));
                let total = stm.read_now(field(offer, R_TOTAL));
                if free + used != total && err.is_none() {
                    err = Some(format!(
                        "offer {id} ({rel:?}): free {free} + used {used} != total {total}"
                    ));
                }
                if (free < 0 || used < 0) && err.is_none() {
                    err = Some(format!("offer {id} ({rel:?}): negative counter"));
                }
                total_used += used;
            });
            if let Some(e) = err {
                return Err(e);
            }
            self.tables[rel as usize].verify(stm)?;
        }
        let mut booked = 0i64;
        self.customers.for_each_now(stm, |_, mut node| {
            while node != NIL {
                booked += 1;
                node = stm.read_now(field(node, L_NEXT));
            }
        });
        if booked != total_used {
            return Err(format!(
                "customer lists record {booked} bookings but tables show {total_used} used"
            ));
        }
        Ok(())
    }
}

/// Measured fixed-work run for the figure harness (`sessions` client
/// sessions split across `threads`).
pub fn run(
    stm: &Stm,
    config: VacationConfig,
    threads: usize,
    sessions: u64,
    seed: u64,
) -> RunResult {
    let db = Vacation::new(stm, config);
    let r = run_fixed_work(stm, threads, sessions, seed, |_tid, _i, rng| {
        db.session(stm, rng);
    });
    db.verify(stm).expect("vacation invariant violated");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 20).orec_count(1 << 12))
    }

    fn small() -> VacationConfig {
        VacationConfig {
            relations: 32,
            queries_per_tx: 4,
            customers: 16,
            ..VacationConfig::default()
        }
    }

    #[test]
    fn reservation_books_best_available_offer() {
        let s = stm(Algorithm::SNOrec);
        let db = Vacation::new(&s, small());
        let ids: Vec<i64> = (1..=8).collect();
        let booked = s.atomic(|tx| db.make_reservation(&s, tx, Relation::Car, 1, &ids));
        assert!(booked);
        db.verify(&s).unwrap();
        // One unit consumed somewhere among the queried offers.
        let mut used = 0;
        db.tables[Relation::Car as usize].for_each_now(&s, |_, offer| {
            used += s.read_now(field(offer, R_USED));
        });
        assert_eq!(used, 1);
    }

    #[test]
    fn delete_customer_releases_bookings() {
        let s = stm(Algorithm::STl2);
        let db = Vacation::new(&s, small());
        let ids: Vec<i64> = (1..=8).collect();
        for _ in 0..3 {
            s.atomic(|tx| db.make_reservation(&s, tx, Relation::Room, 7, &ids));
        }
        db.verify(&s).unwrap();
        let released = s.atomic(|tx| db.delete_customer(tx, 7));
        assert_eq!(released, 3);
        db.verify(&s).unwrap();
        let mut used = 0;
        db.tables[Relation::Room as usize].for_each_now(&s, |_, offer| {
            used += s.read_now(field(offer, R_USED));
        });
        assert_eq!(used, 0);
    }

    #[test]
    fn update_tables_keeps_invariants() {
        let s = stm(Algorithm::SNOrec);
        let db = Vacation::new(&s, small());
        let ids: Vec<i64> = (1..=6).collect();
        s.atomic(|tx| db.update_tables(tx, Relation::Flight, &ids, 12345));
        db.verify(&s).unwrap();
    }

    #[test]
    fn sessions_preserve_invariants_across_algorithms() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let db = Vacation::new(&s, small());
            let mut rng = SplitMix64::new(42);
            for _ in 0..60 {
                db.session(&s, &mut rng);
            }
            db.verify(&s).unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }

    #[test]
    fn concurrent_sessions_preserve_invariants() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let s = stm(alg);
            let r = run(&s, small(), 4, 200, 9);
            assert_eq!(r.total_ops, 200, "{alg}");
        }
    }

    #[test]
    fn semantic_profile_shows_promotions() {
        // The paper: "almost all the inc operations were promoted to read
        // and write operations because of an additional sanity check".
        let s = stm(Algorithm::SNOrec);
        let db = Vacation::new(&s, small());
        let mut rng = SplitMix64::new(3);
        for _ in 0..40 {
            db.session(&s, &mut rng);
        }
        let st = s.stats();
        assert!(st.promotes > 0, "sanity re-reads must promote increments");
        assert!(st.cmps > 0, "availability/price checks are compares");
        assert!(
            st.reads > st.cmps,
            "tree traversal keeps most reads plain: {} reads vs {} cmps",
            st.reads,
            st.cmps
        );
    }
}
