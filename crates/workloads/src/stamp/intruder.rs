//! STAMP **Intruder** — network-intrusion detection, reduced kernel
//! (paper Table 3).
//!
//! Like Genome, Intruder is profiled in Table 3 (28.5 reads, 2.6 writes
//! per transaction) but excluded from the figures: its transactions —
//! popping a packet fragment off a shared queue and threading it into a
//! per-flow reassembly list — consume the values they read, so nothing
//! converts to `cmp`/`inc`. The port deliberately uses only plain
//! reads/writes to reproduce that profile.
//!
//! Pipeline: *capture* (pop fragment) → *reassembly* (insert into the
//! flow's fragment list; on completion, hand the flow to detection) →
//! *detection* (local scan for an "attack" signature).

use crate::driver::{run_fixed_work, RunResult};
use semtm_core::util::SplitMix64;
use semtm_core::{Abort, Addr, Stm, TArray, TVar, Tx};
use std::sync::atomic::{AtomicUsize, Ordering};

const NIL: i64 = -1;

/// Fragment record (4 words): flow id, fragment index, payload, next.
const F_FLOW: usize = 0;
const F_INDEX: usize = 1;
const F_PAYLOAD: usize = 2;
const F_NEXT: usize = 3;

#[inline]
fn field(node: i64, f: usize) -> Addr {
    Addr::from_index(node as usize + f)
}

/// Intruder configuration.
#[derive(Clone, Copy, Debug)]
pub struct IntruderConfig {
    /// Number of flows.
    pub flows: usize,
    /// Fragments per flow.
    pub fragments_per_flow: usize,
    /// Per-mille of flows carrying the attack signature.
    pub attack_per_mille: u32,
}

impl Default for IntruderConfig {
    fn default() -> Self {
        IntruderConfig {
            flows: 256,
            fragments_per_flow: 8,
            attack_per_mille: 100,
        }
    }
}

const SIGNATURE: i64 = 0x5EC;

/// Shared reassembly state.
pub struct Intruder {
    /// Shuffled arrival order of (pre-allocated) fragment records.
    arrivals: Vec<i64>,
    /// Per-flow list head.
    flow_head: TArray<i64>,
    /// Per-flow received-fragment count.
    flow_count: TArray<i64>,
    /// Completed-flow counter.
    completed: TVar<i64>,
    config: IntruderConfig,
    /// Ground truth attack flows.
    attack_flows: Vec<usize>,
}

impl Intruder {
    /// Pre-generate all fragments in shuffled arrival order.
    pub fn new(stm: &Stm, config: IntruderConfig, seed: u64) -> Intruder {
        let mut rng = SplitMix64::new(seed);
        let mut attack_flows = Vec::new();
        let mut arrivals = Vec::with_capacity(config.flows * config.fragments_per_flow);
        for flow in 0..config.flows {
            let is_attack = rng.below(1000) < config.attack_per_mille as u64;
            if is_attack {
                attack_flows.push(flow);
            }
            for idx in 0..config.fragments_per_flow {
                let frag = stm.alloc(4);
                stm.write_now(frag.offset(F_FLOW), flow as i64);
                stm.write_now(frag.offset(F_INDEX), idx as i64);
                let payload = if is_attack && idx == config.fragments_per_flow / 2 {
                    SIGNATURE
                } else {
                    (rng.below(1 << 20) as i64) | 0x1000_0000
                };
                stm.write_now(frag.offset(F_PAYLOAD), payload);
                stm.write_now(frag.offset(F_NEXT), NIL);
                arrivals.push(frag.index() as i64);
            }
        }
        // Shuffle arrivals (fragments arrive out of order).
        for i in (1..arrivals.len()).rev() {
            arrivals.swap(i, rng.index(i + 1));
        }
        Intruder {
            arrivals,
            flow_head: TArray::new(stm, config.flows, NIL),
            flow_count: TArray::new(stm, config.flows, 0),
            completed: TVar::new(stm, 0),
            config,
            attack_flows,
        }
    }

    /// Total fragments to process.
    pub fn fragments(&self) -> usize {
        self.arrivals.len()
    }

    /// Reassembly transaction for arrival `i`: thread the fragment into
    /// its flow's list ordered by fragment index (plain reads/writes
    /// only, see module docs). Returns the flow id if this fragment
    /// completed the flow.
    pub fn process(&self, tx: &mut Tx<'_>, arrival: usize) -> Result<Option<usize>, Abort> {
        let frag = self.arrivals[arrival];
        let flow = tx.read(field(frag, F_FLOW))? as usize;
        let my_index = tx.read(field(frag, F_INDEX))?;

        // Ordered insert into the flow list.
        let head = self.flow_head.read(tx, flow)?;
        if head == NIL || tx.read(field(head, F_INDEX))? > my_index {
            tx.write(field(frag, F_NEXT), head)?;
            self.flow_head.write(tx, flow, frag)?;
        } else {
            let mut cur = head;
            loop {
                let next = tx.read(field(cur, F_NEXT))?;
                if next == NIL || tx.read(field(next, F_INDEX))? > my_index {
                    tx.write(field(frag, F_NEXT), next)?;
                    tx.write(field(cur, F_NEXT), frag)?;
                    break;
                }
                cur = next;
            }
        }
        let count = self.flow_count.read(tx, flow)? + 1;
        self.flow_count.write(tx, flow, count)?;
        if count == self.config.fragments_per_flow as i64 {
            let done = self.completed.read(tx)?;
            self.completed.write(tx, done + 1)?;
            Ok(Some(flow))
        } else {
            Ok(None)
        }
    }

    /// Detection phase (pure local scan once the flow is quiescent for
    /// the completing thread): does the flow carry the signature?
    pub fn detect(&self, stm: &Stm, flow: usize) -> bool {
        let mut cur = self.flow_head.read_now(stm, flow);
        while cur != NIL {
            if stm.read_now(field(cur, F_PAYLOAD)) == SIGNATURE {
                return true;
            }
            cur = stm.read_now(field(cur, F_NEXT));
        }
        false
    }

    /// Quiescent invariants: every flow complete, ordered, and the
    /// detected attack set equals the ground truth.
    pub fn verify(&self, stm: &Stm, detected: &mut Vec<usize>) -> Result<(), String> {
        if self.completed.read_now(stm) != self.config.flows as i64 {
            return Err(format!(
                "{} flows completed, expected {}",
                self.completed.read_now(stm),
                self.config.flows
            ));
        }
        for flow in 0..self.config.flows {
            let mut cur = self.flow_head.read_now(stm, flow);
            let mut expect = 0i64;
            while cur != NIL {
                let idx = stm.read_now(field(cur, F_INDEX));
                if idx != expect {
                    return Err(format!("flow {flow}: fragment {idx} out of order"));
                }
                expect += 1;
                cur = stm.read_now(field(cur, F_NEXT));
            }
            if expect != self.config.fragments_per_flow as i64 {
                return Err(format!("flow {flow}: only {expect} fragments linked"));
            }
        }
        detected.sort_unstable();
        if detected != &self.attack_flows {
            return Err(format!(
                "detected attacks {detected:?} != ground truth {:?}",
                self.attack_flows
            ));
        }
        Ok(())
    }
}

/// Measured run: process every fragment arrival across threads and run
/// detection on completed flows.
pub fn run(stm: &Stm, config: IntruderConfig, threads: usize, seed: u64) -> RunResult {
    let sys = Intruder::new(stm, config, seed);
    let detected = std::sync::Mutex::new(Vec::new());
    let scanned = AtomicUsize::new(0);
    let r = run_fixed_work(
        stm,
        threads,
        sys.fragments() as u64,
        seed,
        |_tid, i, _rng| {
            let done = stm.atomic(|tx| sys.process(tx, i as usize));
            if let Some(flow) = done {
                scanned.fetch_add(1, Ordering::Relaxed);
                if sys.detect(stm, flow) {
                    detected.lock().unwrap().push(flow);
                }
            }
        },
    );
    let mut detected = detected.into_inner().unwrap();
    sys.verify(stm, &mut detected)
        .expect("intruder invariant violated");
    assert_eq!(scanned.load(Ordering::Relaxed), config.flows);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 18).orec_count(1 << 10))
    }

    fn small() -> IntruderConfig {
        IntruderConfig {
            flows: 32,
            fragments_per_flow: 4,
            attack_per_mille: 250,
        }
    }

    #[test]
    fn reassembly_and_detection_single_thread() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let r = run(&s, small(), 1, 11);
            assert_eq!(r.total_ops, 32 * 4, "{alg}");
        }
    }

    #[test]
    fn reassembly_and_detection_concurrent() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let s = stm(alg);
            let _ = run(&s, small(), 4, 23);
        }
    }

    #[test]
    fn profile_has_no_semantic_operations() {
        let s = stm(Algorithm::SNOrec);
        let _ = run(&s, small(), 1, 31);
        let st = s.stats();
        assert!(st.reads > 0);
        assert_eq!(st.cmps + st.cmp_pairs, 0);
        assert_eq!(st.incs, 0);
    }
}
