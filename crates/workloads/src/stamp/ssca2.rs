//! STAMP **SSCA2** — scalable graph kernel 1 (graph construction),
//! reduced (paper Table 3).
//!
//! Transactions are tiny: appending one directed edge to a vertex's
//! adjacency array reads the insertion cursor, writes the slot, and
//! bumps the cursor. In the semantic build the cursor bump becomes a
//! `TM_INC`, giving Table 3's profile of ~1 read + 1 write + 1 increment
//! per transaction — too little semantic traffic to move the figures,
//! which is why the paper reports SSCA2 in Table 3 only.

use crate::driver::{run_fixed_work, RunResult};
use semtm_core::util::SplitMix64;
use semtm_core::{Abort, Stm, TArray, Tx};

/// SSCA2 configuration.
#[derive(Clone, Copy, Debug)]
pub struct Ssca2Config {
    /// Vertices.
    pub vertices: usize,
    /// Directed edges to insert.
    pub edges: usize,
    /// Maximum out-degree (adjacency arrays are pre-sized).
    pub max_degree: usize,
}

impl Default for Ssca2Config {
    fn default() -> Self {
        Ssca2Config {
            vertices: 512,
            edges: 4096,
            max_degree: 64,
        }
    }
}

/// Shared adjacency-array graph under construction.
pub struct Ssca2 {
    /// Per-vertex out-degree cursor.
    degree: TArray<i64>,
    /// Flattened `vertices x max_degree` adjacency slots.
    adjacency: TArray<i64>,
    /// The edge list to insert (u, v).
    edge_list: Vec<(usize, i64)>,
    config: Ssca2Config,
}

impl Ssca2 {
    /// Generate a random edge list (bounded per-vertex degree).
    pub fn new(stm: &Stm, config: Ssca2Config, seed: u64) -> Ssca2 {
        let mut rng = SplitMix64::new(seed);
        let mut budget = vec![config.max_degree; config.vertices];
        let mut edge_list = Vec::with_capacity(config.edges);
        while edge_list.len() < config.edges {
            let u = rng.index(config.vertices);
            if budget[u] == 0 {
                continue;
            }
            budget[u] -= 1;
            let v = rng.index(config.vertices) as i64;
            edge_list.push((u, v));
        }
        Ssca2 {
            degree: TArray::new(stm, config.vertices, 0),
            adjacency: TArray::new(stm, config.vertices * config.max_degree, -1),
            edge_list,
            config,
        }
    }

    /// Number of edges to insert.
    pub fn edges(&self) -> usize {
        self.edge_list.len()
    }

    /// The edge-insertion transaction: read cursor, write slot,
    /// `TM_INC` cursor (the paper's convertible pattern).
    pub fn insert_edge(&self, tx: &mut Tx<'_>, edge: usize) -> Result<(), Abort> {
        let (u, v) = self.edge_list[edge];
        let cursor = self.degree.read(tx, u)?;
        self.adjacency
            .write(tx, u * self.config.max_degree + cursor as usize, v)?;
        self.degree.inc(tx, u, 1)?;
        Ok(())
    }

    /// Quiescent invariants: per-vertex degree equals filled slots, every
    /// inserted edge appears exactly once, no slot written twice.
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        let mut expected: std::collections::HashMap<(usize, i64), usize> =
            std::collections::HashMap::new();
        for &(u, v) in &self.edge_list {
            *expected.entry((u, v)).or_default() += 1;
        }
        let mut got: std::collections::HashMap<(usize, i64), usize> =
            std::collections::HashMap::new();
        for u in 0..self.config.vertices {
            let deg = self.degree.read_now(stm, u) as usize;
            for slot in 0..self.config.max_degree {
                let v = self
                    .adjacency
                    .read_now(stm, u * self.config.max_degree + slot);
                if slot < deg {
                    if v < 0 {
                        return Err(format!("vertex {u}: hole at slot {slot} within degree"));
                    }
                    *got.entry((u, v)).or_default() += 1;
                } else if v >= 0 {
                    return Err(format!("vertex {u}: write beyond degree at slot {slot}"));
                }
            }
        }
        if got != expected {
            return Err("adjacency multiset does not match edge list".into());
        }
        Ok(())
    }
}

/// Measured run: insert every edge across threads.
pub fn run(stm: &Stm, config: Ssca2Config, threads: usize, seed: u64) -> RunResult {
    let g = Ssca2::new(stm, config, seed);
    let r = run_fixed_work(stm, threads, g.edges() as u64, seed, |_tid, i, _rng| {
        stm.atomic(|tx| g.insert_edge(tx, i as usize));
    });
    g.verify(stm).expect("ssca2 adjacency incorrect");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 18).orec_count(1 << 10))
    }

    fn small() -> Ssca2Config {
        Ssca2Config {
            vertices: 32,
            edges: 256,
            max_degree: 32,
        }
    }

    #[test]
    fn construction_correct_single_thread() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let r = run(&s, small(), 1, 3);
            assert_eq!(r.total_ops, 256, "{alg}");
        }
    }

    #[test]
    fn construction_correct_concurrent() {
        // Concurrent appends to the same vertex must serialise through
        // the cursor read validation (no overwritten slots).
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let _ = run(&s, small(), 4, 7);
        }
    }

    #[test]
    fn semantic_profile_read_write_inc() {
        let s = stm(Algorithm::SNOrec);
        let _ = run(&s, small(), 1, 13);
        let st = s.stats();
        assert!(
            (st.reads_per_tx() - 1.0).abs() < 1e-9,
            "{}",
            st.reads_per_tx()
        );
        assert!((st.writes_per_tx() - 1.0).abs() < 1e-9);
        assert!((st.incs_per_tx() - 1.0).abs() < 1e-9);
        assert_eq!(st.promotes, 0, "inc after read never promotes");
    }

    #[test]
    fn base_profile_two_reads_two_writes() {
        let s = stm(Algorithm::Tl2);
        let _ = run(&s, small(), 1, 13);
        let st = s.stats();
        assert!((st.reads_per_tx() - 2.0).abs() < 1e-9);
        assert!((st.writes_per_tx() - 2.0).abs() < 1e-9);
    }
}
