//! A transactional ordered map over the TM heap — an unbalanced binary
//! search tree.
//!
//! This is the simpler sibling of [`super::rbtree::RbMap`] (which is
//! what Vacation actually uses): same API, no rebalancing. It stays in
//! the tree for two reasons: it exercises the TM API with a second
//! pointer-based data structure in tests, and it demonstrates that the
//! transactional-heap programming model does not depend on any
//! particular structure invariants. With uniformly random keys its
//! traversal-read profile matches the RB tree's expected O(log n).
//! Deleted nodes are unlinked but not recycled (epoch-free arena),
//! which is safe under TM and bounded for the benchmark's run lengths.
//!
//! Node layout (4 heap words): `key, value, left, right`; `-1` is nil.

use semtm_core::{Abort, Addr, Stm, TVar, Tx};

const NIL: i64 = -1;

const KEY: usize = 0;
const VAL: usize = 1;
const LEFT: usize = 2;
const RIGHT: usize = 3;

#[inline]
fn field(node: i64, f: usize) -> Addr {
    debug_assert!(node >= 0);
    Addr::from_index(node as usize + f)
}

/// Transactional map from `i64` keys to one `i64` value word.
pub struct TMap {
    root: TVar<i64>,
}

impl TMap {
    /// Create an empty map.
    pub fn new(stm: &Stm) -> TMap {
        TMap {
            root: TVar::new(stm, NIL),
        }
    }

    fn alloc_node(stm: &Stm, key: i64, value: i64) -> i64 {
        let a = stm.alloc(4);
        stm.write_now(a.offset(KEY), key);
        stm.write_now(a.offset(VAL), value);
        stm.write_now(a.offset(LEFT), NIL);
        stm.write_now(a.offset(RIGHT), NIL);
        a.index() as i64
    }

    /// Transactional lookup. Traversal uses plain reads (see module doc).
    pub fn get(&self, tx: &mut Tx<'_>, key: i64) -> Result<Option<i64>, Abort> {
        let mut cur = self.root.read(tx)?;
        while cur != NIL {
            let k = tx.read(field(cur, KEY))?;
            if key == k {
                return Ok(Some(tx.read(field(cur, VAL))?));
            }
            cur = tx.read(field(cur, if key < k { LEFT } else { RIGHT }))?;
        }
        Ok(None)
    }

    /// Whether `key` is present.
    pub fn contains(&self, tx: &mut Tx<'_>, key: i64) -> Result<bool, Abort> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Insert `key -> value`; overwrites and returns `false` if present.
    ///
    /// New nodes are arena-allocated outside transactional control (an
    /// aborted attempt leaks its node — bump allocation makes this safe).
    pub fn insert(&self, stm: &Stm, tx: &mut Tx<'_>, key: i64, value: i64) -> Result<bool, Abort> {
        let mut cur = self.root.read(tx)?;
        if cur == NIL {
            let node = Self::alloc_node(stm, key, value);
            self.root.write(tx, node)?;
            return Ok(true);
        }
        loop {
            let k = tx.read(field(cur, KEY))?;
            if key == k {
                tx.write(field(cur, VAL), value)?;
                return Ok(false);
            }
            let dir = if key < k { LEFT } else { RIGHT };
            let next = tx.read(field(cur, dir))?;
            if next == NIL {
                let node = Self::alloc_node(stm, key, value);
                tx.write(field(cur, dir), node)?;
                return Ok(true);
            }
            cur = next;
        }
    }

    /// Remove `key`, returning its value if present. Standard BST delete:
    /// two-child nodes take their in-order successor's key/value and the
    /// successor is spliced out.
    pub fn remove(&self, tx: &mut Tx<'_>, key: i64) -> Result<Option<i64>, Abort> {
        // Locate node and its parent link.
        let mut parent: Option<(i64, usize)> = None; // (node, which-child)
        let mut cur = self.root.read(tx)?;
        let removed_val;
        loop {
            if cur == NIL {
                return Ok(None);
            }
            let k = tx.read(field(cur, KEY))?;
            if key == k {
                removed_val = tx.read(field(cur, VAL))?;
                break;
            }
            let dir = if key < k { LEFT } else { RIGHT };
            parent = Some((cur, dir));
            cur = tx.read(field(cur, dir))?;
        }

        let left = tx.read(field(cur, LEFT))?;
        let right = tx.read(field(cur, RIGHT))?;
        if left != NIL && right != NIL {
            // Two children: copy the in-order successor into `cur`, then
            // splice the successor (which has no left child) out.
            let mut sparent = cur;
            let mut sdir = RIGHT;
            let mut succ = right;
            loop {
                let sl = tx.read(field(succ, LEFT))?;
                if sl == NIL {
                    break;
                }
                sparent = succ;
                sdir = LEFT;
                succ = sl;
            }
            let sk = tx.read(field(succ, KEY))?;
            let sv = tx.read(field(succ, VAL))?;
            tx.write(field(cur, KEY), sk)?;
            tx.write(field(cur, VAL), sv)?;
            let srep = tx.read(field(succ, RIGHT))?;
            tx.write(field(sparent, sdir), srep)?;
        } else {
            let replacement = if left != NIL { left } else { right };
            match parent {
                Some((p, dir)) => tx.write(field(p, dir), replacement)?,
                None => self.root.write(tx, replacement)?,
            }
        }
        Ok(Some(removed_val))
    }

    /// Non-transactional in-order walk (quiescent verification only).
    pub fn for_each_now(&self, stm: &Stm, mut f: impl FnMut(i64, i64)) {
        fn walk(stm: &Stm, node: i64, f: &mut impl FnMut(i64, i64)) {
            if node == NIL {
                return;
            }
            walk(stm, stm.read_now(field(node, LEFT)), f);
            f(
                stm.read_now(field(node, KEY)),
                stm.read_now(field(node, VAL)),
            );
            walk(stm, stm.read_now(field(node, RIGHT)), f);
        }
        walk(stm, self.root.read_now(stm), &mut f);
    }

    /// Quiescent element count.
    pub fn len_now(&self, stm: &Stm) -> usize {
        let mut n = 0;
        self.for_each_now(stm, |_, _| n += 1);
        n
    }

    /// Quiescent BST-order integrity check.
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        let mut last: Option<i64> = None;
        let mut err = None;
        self.for_each_now(stm, |k, _| {
            if let Some(prev) = last {
                if prev >= k && err.is_none() {
                    err = Some(format!("BST order violated: {prev} >= {k}"));
                }
            }
            last = Some(k);
        });
        err.map_or(Ok(()), Err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::util::SplitMix64;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 18).orec_count(1 << 10))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let m = TMap::new(&s);
            assert!(s.atomic(|tx| m.insert(&s, tx, 5, 50)));
            assert!(s.atomic(|tx| m.insert(&s, tx, 2, 20)));
            assert!(s.atomic(|tx| m.insert(&s, tx, 8, 80)));
            assert!(!s.atomic(|tx| m.insert(&s, tx, 5, 55)), "overwrite");
            assert_eq!(s.atomic(|tx| m.get(tx, 5)), Some(55), "{alg}");
            assert_eq!(s.atomic(|tx| m.get(tx, 3)), None);
            assert_eq!(s.atomic(|tx| m.remove(tx, 5)), Some(55));
            assert_eq!(s.atomic(|tx| m.get(tx, 5)), None);
            assert_eq!(s.atomic(|tx| m.remove(tx, 5)), None);
            m.verify(&s).unwrap();
            assert_eq!(m.len_now(&s), 2);
        }
    }

    #[test]
    fn random_workout_matches_model() {
        let s = stm(Algorithm::SNOrec);
        let m = TMap::new(&s);
        let mut model = std::collections::BTreeMap::new();
        let mut rng = SplitMix64::new(99);
        for _ in 0..600 {
            let key = rng.below(64) as i64;
            match rng.below(3) {
                0 => {
                    let fresh = s.atomic(|tx| m.insert(&s, tx, key, key * 7));
                    assert_eq!(fresh, model.insert(key, key * 7).is_none());
                }
                1 => {
                    let got = s.atomic(|tx| m.get(tx, key));
                    assert_eq!(got, model.get(&key).copied());
                }
                _ => {
                    let got = s.atomic(|tx| m.remove(tx, key));
                    assert_eq!(got, model.remove(&key));
                }
            }
        }
        m.verify(&s).unwrap();
        assert_eq!(m.len_now(&s), model.len());
        let mut pairs = Vec::new();
        m.for_each_now(&s, |k, v| pairs.push((k, v)));
        assert_eq!(pairs, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn remove_two_children_cases() {
        let s = stm(Algorithm::STl2);
        let m = TMap::new(&s);
        for k in [50, 30, 70, 20, 40, 60, 80, 65] {
            s.atomic(|tx| m.insert(&s, tx, k, k));
        }
        // Remove root (two children, successor has a right child).
        assert_eq!(s.atomic(|tx| m.remove(tx, 50)), Some(50));
        m.verify(&s).unwrap();
        // Remove a node whose successor is its own right child.
        assert_eq!(s.atomic(|tx| m.remove(tx, 60)), Some(60));
        m.verify(&s).unwrap();
        assert_eq!(m.len_now(&s), 6);
        for k in [30, 70, 20, 40, 80, 65] {
            assert_eq!(s.atomic(|tx| m.get(tx, k)), Some(k));
        }
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let s = stm(alg);
            let m = TMap::new(&s);
            std::thread::scope(|scope| {
                for t in 0..4i64 {
                    let s = &s;
                    let m = &m;
                    scope.spawn(move || {
                        for i in 0..100i64 {
                            let key = t * 1000 + i;
                            s.atomic(|tx| m.insert(s, tx, key, key));
                        }
                    });
                }
            });
            assert_eq!(m.len_now(&s), 400, "{alg}");
            m.verify(&s).unwrap();
        }
    }
}
