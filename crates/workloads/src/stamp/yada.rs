//! STAMP **Yada** — Ruppert-style mesh refinement (paper §7.1),
//! simplified per DESIGN.md §7.
//!
//! Threads drain a work list of *bad* elements (quality below a
//! threshold). Refining an element opens a **cavity**: the element plus
//! its neighbourhood is read, the bad element is retired (its `alive`
//! flag cleared — the "isGarbage" state the paper converts to a `cmp`),
//! and two better replacement elements are spliced into the
//! neighbourhood; a shared element counter is `TM_INC`ed. Replacements
//! can themselves be bad, so the work list grows dynamically until the
//! mesh is fully refined — exactly Yada's execution pattern, where
//! cavities of nearby bad elements overlap and produce *true* conflicts
//! that semantic validation cannot (and must not) forgive.
//!
//! Element record (8 heap words): `alive, quality, nbr[0..4], generation`.

use crate::driver::RunResult;
use semtm_core::util::SplitMix64;
use semtm_core::{Abort, Addr, CmpOp, Stm, TVar, Tx};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const E_ALIVE: usize = 0;
const E_QUALITY: usize = 1;
const E_NBR: usize = 2; // 4 slots
const E_GEN: usize = 6;
const WORDS: usize = 8;

const NBRS: usize = 4;
const NIL: i64 = -1;

#[inline]
fn field(elem: i64, f: usize) -> Addr {
    Addr::from_index(elem as usize + f)
}

/// Yada configuration.
#[derive(Clone, Copy, Debug)]
pub struct YadaConfig {
    /// Initial mesh elements.
    pub elements: usize,
    /// Quality threshold: elements below it are "bad" (refined).
    pub threshold: i64,
    /// Quality gained per refinement generation (replacements get
    /// `quality + boost ± jitter`).
    pub boost: i64,
}

impl Default for YadaConfig {
    fn default() -> Self {
        YadaConfig {
            elements: 512,
            threshold: 50,
            boost: 30,
        }
    }
}

/// The shared mesh.
pub struct Yada {
    config: YadaConfig,
    /// Live element count (transactional — the paper's counter `inc`).
    element_count: TVar<i64>,
    /// All elements ever created (ids are heap block addresses).
    created: Mutex<Vec<i64>>,
    /// Initial bad-element work list.
    initial_work: Vec<i64>,
}

impl Yada {
    /// Build an initial mesh: a ring of elements with cross links and
    /// randomised qualities.
    pub fn new(stm: &Stm, config: YadaConfig, seed: u64) -> Yada {
        let mut rng = SplitMix64::new(seed);
        let mut ids = Vec::with_capacity(config.elements);
        for _ in 0..config.elements {
            let e = stm.alloc(WORDS);
            ids.push(e.index() as i64);
        }
        let n = ids.len();
        let mut initial_work = Vec::new();
        for (i, &e) in ids.iter().enumerate() {
            let quality = rng.below(100) as i64;
            stm.write_now(field(e, E_ALIVE).offset(0), 1);
            stm.write_now(field(e, E_QUALITY), quality);
            stm.write_now(field(e, E_GEN), 0);
            // Ring plus a long-range chord: realistic cavity overlap.
            let nbrs = [
                ids[(i + 1) % n],
                ids[(i + n - 1) % n],
                ids[(i + 7) % n],
                ids[rng.index(n)],
            ];
            for (s, nb) in nbrs.iter().enumerate() {
                stm.write_now(field(e, E_NBR + s), *nb);
            }
            if quality < config.threshold {
                initial_work.push(e);
            }
        }
        Yada {
            config,
            element_count: TVar::new(stm, config.elements as i64),
            created: Mutex::new(ids),
            initial_work,
        }
    }

    /// Number of elements whose refinement is pending at construction.
    pub fn initial_bad(&self) -> usize {
        self.initial_work.len()
    }

    /// Refine one element. Returns newly created bad elements to be
    /// re-queued, or `None` if the element was already retired or good.
    fn refine(
        &self,
        stm: &Stm,
        tx: &mut Tx<'_>,
        elem: i64,
        rng_word: u64,
    ) -> Result<Option<Vec<i64>>, Abort> {
        // isGarbage check — semantic: the relation "alive == 1" is all we
        // need; a concurrent refinement that retires a *different*
        // element never flips it.
        if !tx.cmp(field(elem, E_ALIVE), CmpOp::Eq, 1)? {
            return Ok(None);
        }
        let quality = tx.read(field(elem, E_QUALITY))?;
        if quality >= self.config.threshold {
            return Ok(None);
        }
        // Open the cavity: read the whole neighbourhood (plain reads —
        // the dominant traffic, as in Table 3's Yada profile).
        let mut cavity = [NIL; NBRS];
        for (s, slot) in cavity.iter_mut().enumerate() {
            let nb = tx.read(field(elem, E_NBR + s))?;
            *slot = nb;
            if nb != NIL {
                let _ = tx.read(field(nb, E_ALIVE))?;
                let _ = tx.read(field(nb, E_QUALITY))?;
                let _ = tx.read(field(nb, E_GEN))?;
            }
        }
        let generation = tx.read(field(elem, E_GEN))?;

        // Retire the bad element, create two replacements.
        tx.write(field(elem, E_ALIVE), 0)?;
        let mut fresh = Vec::new();
        let mut new_ids = [NIL; 2];
        for (k, id_slot) in new_ids.iter_mut().enumerate() {
            let e = stm.alloc(WORDS);
            let id = e.index() as i64;
            *id_slot = id;
            let jitter = ((rng_word >> (k * 8)) % 17) as i64 - 8;
            let q = (quality + self.config.boost + jitter).min(100);
            tx.write(field(id, E_ALIVE), 1)?;
            tx.write(field(id, E_QUALITY), q)?;
            tx.write(field(id, E_GEN), generation + 1)?;
            if q < self.config.threshold {
                fresh.push(id);
            }
        }
        // Splice: each replacement links to half the cavity + its twin.
        for (k, &id) in new_ids.iter().enumerate() {
            tx.write(field(id, E_NBR), new_ids[1 - k])?;
            tx.write(field(id, E_NBR + 1), cavity[k * 2])?;
            tx.write(field(id, E_NBR + 2), cavity[k * 2 + 1])?;
            tx.write(field(id, E_NBR + 3), NIL)?;
        }
        // Rewire cavity members that pointed at the retired element.
        for (k, &nb) in cavity.iter().enumerate() {
            if nb == NIL {
                continue;
            }
            for s in 0..NBRS {
                let p = tx.read(field(nb, E_NBR + s))?;
                if p == elem {
                    tx.write(field(nb, E_NBR + s), new_ids[k / 2])?;
                }
            }
        }
        // Net element count: -1 + 2.
        tx.inc(self.element_count.addr(), 1)?;
        self.created.lock().unwrap().extend_from_slice(&new_ids);
        Ok(Some(fresh))
    }

    /// Drain the refinement work list on `threads` workers until the
    /// mesh has no bad elements. Returns total refinements performed.
    pub fn run_refinement(&self, stm: &Stm, threads: usize, seed: u64) -> usize {
        let queue = Mutex::new(self.initial_work.clone());
        let refinements = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for tid in 0..threads {
                let queue = &queue;
                let refinements = &refinements;
                s.spawn(move || {
                    let mut rng = SplitMix64::new(seed ^ (tid as u64 + 1).wrapping_mul(0xABCD));
                    loop {
                        let next = queue.lock().unwrap().pop();
                        let Some(elem) = next else {
                            break;
                        };
                        let w = rng.next_u64();
                        let out = stm.atomic(|tx| self.refine(stm, tx, elem, w));
                        if let Some(fresh) = out {
                            refinements.fetch_add(1, Ordering::Relaxed);
                            if !fresh.is_empty() {
                                queue.lock().unwrap().extend_from_slice(&fresh);
                            }
                        }
                    }
                });
            }
        });
        refinements.load(Ordering::Relaxed)
    }

    /// Quiescent invariants: the transactional element counter matches
    /// the alive census; no alive element is below threshold; every
    /// alive element's neighbours are valid ids.
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        let created = self.created.lock().unwrap();
        let idset: std::collections::HashSet<i64> = created.iter().copied().collect();
        let mut alive = 0i64;
        for &e in created.iter() {
            if stm.read_now(field(e, E_ALIVE)) != 1 {
                continue;
            }
            alive += 1;
            let q = stm.read_now(field(e, E_QUALITY));
            if q < self.config.threshold {
                return Err(format!("alive element {e} still bad (quality {q})"));
            }
            for s in 0..NBRS {
                let nb = stm.read_now(field(e, E_NBR + s));
                if nb != NIL && !idset.contains(&nb) {
                    return Err(format!("element {e} links to unknown id {nb}"));
                }
            }
        }
        let counted = self.element_count.read_now(stm);
        if counted != alive {
            return Err(format!("element counter {counted} != alive census {alive}"));
        }
        Ok(())
    }
}

/// Measured run for the figure harness: full refinement, reporting
/// wall-clock time (Figure 1o) and abort rate (Figure 1p).
pub fn run(stm: &Stm, config: YadaConfig, threads: usize, seed: u64) -> RunResult {
    let mesh = Yada::new(stm, config, seed);
    let before = stm.stats();
    let start = std::time::Instant::now();
    let refinements = mesh.run_refinement(stm, threads, seed);
    let elapsed = start.elapsed();
    mesh.verify(stm).expect("yada invariant violated");
    RunResult {
        threads,
        elapsed,
        total_ops: refinements as u64,
        stats: stm.stats().since(&before),
        setup_commits: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 20).orec_count(1 << 10))
    }

    fn small() -> YadaConfig {
        YadaConfig {
            elements: 64,
            threshold: 50,
            boost: 30,
        }
    }

    #[test]
    fn refinement_terminates_and_cleans_mesh() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let mesh = Yada::new(&s, small(), 7);
            let bad = mesh.initial_bad();
            assert!(bad > 0, "seeded mesh must contain bad elements");
            let refinements = mesh.run_refinement(&s, 1, 7);
            assert!(refinements >= bad, "{alg}: every seed element refined");
            mesh.verify(&s).unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }

    #[test]
    fn concurrent_refinement_keeps_invariants() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let s = stm(alg);
            let mesh = Yada::new(&s, small(), 13);
            mesh.run_refinement(&s, 4, 13);
            mesh.verify(&s).unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }

    #[test]
    fn profile_is_read_dominated_with_few_compares() {
        // Table 3 Yada: reads stay dominant; only the garbage checks
        // become compares.
        let s = stm(Algorithm::SNOrec);
        let mesh = Yada::new(&s, small(), 29);
        mesh.run_refinement(&s, 1, 29);
        let st = s.stats();
        assert!(st.reads > 0);
        assert!(st.cmps > 0);
        assert!(
            st.reads > 5 * st.cmps,
            "reads must dominate compares ({} vs {})",
            st.reads,
            st.cmps
        );
        assert!(st.incs > 0, "element counter increments");
    }
}
