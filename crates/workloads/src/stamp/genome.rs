//! STAMP **Genome** — gene sequencing, reduced kernel (paper Table 3).
//!
//! The paper profiles Genome but excludes it from the performance figures
//! because its transactions contain almost no semantic-convertible
//! operations (Table 3: 84 reads, 3 writes, ≈0 compares/increments per
//! transaction). This port reproduces that profile: the dominant phase
//! deduplicates DNA segments through a *chained* transactional hash set —
//! bucket-list traversals are value-carrying plain reads (the next
//! pointer and segment of every visited node are *used*, not just
//! compared), so nothing converts.
//!
//! Segments are 64-bit packed nucleotide windows drawn from a synthetic
//! genome string. Phase 2 is STAMP's overlap matcher: for decreasing
//! overlap lengths, each unmatched segment searches a prefix-indexed
//! table for a successor whose prefix equals its suffix and links to it
//! transactionally (claim + link in one transaction) — also
//! read-dominated, with a single rare `TM_EQ` on the claim flag
//! (Table 3's 0.06 compares/tx residue).

use crate::driver::{run_fixed_work, RunResult};
use semtm_core::util::SplitMix64;
use semtm_core::{Abort, Addr, Stm, TArray, Tx};

const NIL: i64 = -1;
/// Hash-set node: segment value, next pointer.
const N_SEG: usize = 0;
const N_NEXT: usize = 1;

#[inline]
fn field(node: i64, f: usize) -> Addr {
    Addr::from_index(node as usize + f)
}

/// Genome configuration.
#[derive(Clone, Copy, Debug)]
pub struct GenomeConfig {
    /// Length of the synthetic genome (nucleotides).
    pub genome_length: usize,
    /// Segment window length (nucleotides, ≤ 32 for 2-bit packing).
    pub segment_length: usize,
    /// Number of (overlapping, duplicated) segments sampled.
    pub segments: usize,
    /// Hash-set buckets — kept low so chains are long and transactions
    /// read-heavy, matching Table 3's 84 reads/tx.
    pub buckets: usize,
    /// Segments deduplicated per transaction.
    pub inserts_per_tx: usize,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        GenomeConfig {
            genome_length: 4096,
            segment_length: 16,
            segments: 4096,
            buckets: 64,
            inserts_per_tx: 4,
        }
    }
}

/// Phase-2 link record layout (4 heap words per unique segment):
/// `segment, next (successor index or -1), claimed (0/1), overlap used`.
const L_SEG: usize = 0;
const L_NEXT: usize = 1;
const L_CLAIMED: usize = 2;
const L_OVERLAP: usize = 3;

/// The segment-deduplication table plus the sampled segment stream.
pub struct Genome {
    buckets: TArray<i64>,
    config: GenomeConfig,
    /// Sampled (duplicated) segment stream — the phase-1 input.
    stream: Vec<i64>,
    /// Ground truth: distinct segments in the stream.
    distinct: usize,
}

impl Genome {
    /// Synthesise a genome, sample overlapping segments (with heavy
    /// duplication, as the real benchmark's sequencer input has).
    pub fn new(stm: &Stm, config: GenomeConfig, seed: u64) -> Genome {
        let mut rng = SplitMix64::new(seed);
        let genome: Vec<u8> = (0..config.genome_length)
            .map(|_| rng.below(4) as u8)
            .collect();
        let mut stream = Vec::with_capacity(config.segments);
        let span = config.genome_length - config.segment_length;
        for _ in 0..config.segments {
            let start = rng.index(span);
            let mut packed: i64 = 0;
            for &n in &genome[start..start + config.segment_length] {
                packed = (packed << 2) | n as i64;
            }
            // The raw 2-bit packing is kept intact so phase 2 can do
            // suffix/prefix arithmetic on the stored value.
            stream.push(packed);
        }
        let distinct = {
            let mut s: Vec<i64> = stream.clone();
            s.sort_unstable();
            s.dedup();
            s.len()
        };
        Genome {
            buckets: TArray::new(stm, config.buckets, NIL),
            config,
            stream,
            distinct,
        }
    }

    #[inline]
    fn bucket(&self, segment: i64) -> usize {
        semtm_core::util::hash_u32(segment as u32) as usize % self.config.buckets
    }

    /// Insert one segment if absent; plain-read chain traversal.
    pub fn dedup_insert(&self, stm: &Stm, tx: &mut Tx<'_>, segment: i64) -> Result<bool, Abort> {
        let b = self.bucket(segment);
        let head = self.buckets.read(tx, b)?;
        let mut cur = head;
        while cur != NIL {
            if tx.read(field(cur, N_SEG))? == segment {
                return Ok(false);
            }
            cur = tx.read(field(cur, N_NEXT))?;
        }
        let node = stm.alloc(2);
        stm.write_now(node.offset(N_SEG), segment);
        tx.write(node.offset(N_NEXT), head)?;
        self.buckets.write(tx, b, node.index() as i64)?;
        Ok(true)
    }

    /// Phase-1 transaction: deduplicate a batch of stream segments.
    pub fn dedup_tx(&self, stm: &Stm, indices: &[usize]) -> usize {
        stm.atomic(|tx| {
            let mut fresh = 0;
            for &i in indices {
                if self.dedup_insert(stm, tx, self.stream[i])? {
                    fresh += 1;
                }
            }
            Ok(fresh)
        })
    }

    /// Quiescent census of deduplicated segments.
    pub fn unique_now(&self, stm: &Stm) -> usize {
        let mut n = 0;
        for b in 0..self.config.buckets {
            let mut cur = self.buckets.read_now(stm, b);
            while cur != NIL {
                n += 1;
                cur = stm.read_now(field(cur, N_NEXT));
            }
        }
        n
    }

    /// Check the dedup result against the ground truth.
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        let got = self.unique_now(stm);
        if got != self.distinct {
            return Err(format!(
                "dedup produced {got} segments, ground truth {}",
                self.distinct
            ));
        }
        // No duplicates within any chain.
        for b in 0..self.config.buckets {
            let mut seen = std::collections::HashSet::new();
            let mut cur = self.buckets.read_now(stm, b);
            while cur != NIL {
                if !seen.insert(stm.read_now(field(cur, N_SEG))) {
                    return Err(format!("duplicate segment in bucket {b}"));
                }
                cur = stm.read_now(field(cur, N_NEXT));
            }
        }
        Ok(())
    }
}

/// The phase-2 matcher state: one link record per unique segment plus a
/// prefix index (bucket -> list of record ids) rebuilt per overlap
/// length outside transactions, as STAMP's sequencer does.
pub struct Matcher {
    records: Vec<i64>,
    segment_length: usize,
}

impl Matcher {
    /// Build link records for the deduplicated segments of `g`.
    pub fn new(stm: &Stm, g: &Genome) -> Matcher {
        let mut records = Vec::new();
        for b in 0..g.config.buckets {
            let mut cur = g.buckets.read_now(stm, b);
            while cur != NIL {
                let seg = stm.read_now(field(cur, N_SEG));
                let rec = stm.alloc(4);
                stm.write_now(rec.offset(L_SEG), seg);
                stm.write_now(rec.offset(L_NEXT), NIL);
                stm.write_now(rec.offset(L_CLAIMED), 0);
                stm.write_now(rec.offset(L_OVERLAP), 0);
                records.push(rec.index() as i64);
                cur = stm.read_now(field(cur, N_NEXT));
            }
        }
        Matcher {
            records,
            segment_length: g.config.segment_length,
        }
    }

    /// Number of unique-segment link records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when there are no records (empty input).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    #[inline]
    fn prefix(seg: i64, seg_len: usize, k: usize) -> i64 {
        seg >> (2 * (seg_len - k))
    }

    #[inline]
    fn suffix(seg: i64, k: usize) -> i64 {
        seg & ((1i64 << (2 * k)) - 1)
    }

    /// Link one segment at overlap `k`: find an unclaimed record whose
    /// prefix-k equals our suffix-k and claim it as successor. One
    /// transaction per candidate set, exactly one winner per successor.
    fn try_link(
        &self,
        stm: &Stm,
        rec: i64,
        k: usize,
        index: &std::collections::HashMap<i64, Vec<i64>>,
    ) -> bool {
        let me_seg = stm.read_now(field(rec, L_SEG));
        let want = Self::suffix(me_seg, k);
        let Some(candidates) = index.get(&want) else {
            return false;
        };
        for &cand in candidates {
            if cand == rec {
                continue; // no self-loops
            }
            let chain_bound = self.records.len();
            let linked = stm.atomic(|tx| {
                // Already linked in a previous round (or by a racing
                // thread of this round): nothing to do.
                if tx.read(field(rec, L_NEXT))? != NIL {
                    return Ok(true);
                }
                // The claim check is the one semantic residue of Genome
                // (Table 3's 0.06 compares/tx).
                if !tx.eq(field(cand, L_CLAIMED), 0)? {
                    return Ok(false);
                }
                // Synthetic genomes can close overlap loops (real
                // sequencer input cannot): refuse a link whose target
                // chain leads back to us.
                let mut cur = cand;
                for _ in 0..chain_bound {
                    let next = tx.read(field(cur, L_NEXT))?;
                    if next == rec {
                        return Ok(false);
                    }
                    if next == NIL {
                        break;
                    }
                    cur = next;
                }
                tx.write(field(cand, L_CLAIMED), 1)?;
                tx.write(field(rec, L_NEXT), cand)?;
                tx.write(field(rec, L_OVERLAP), k as i64)?;
                Ok(true)
            });
            if linked {
                return true;
            }
        }
        false
    }

    /// Run the full matching pass: overlap lengths from `L-1` down to
    /// `min_overlap`, threads splitting the record space per round.
    /// Returns the number of links formed.
    pub fn run_matching(&self, stm: &Stm, threads: usize, min_overlap: usize) -> usize {
        let mut links = std::sync::atomic::AtomicUsize::new(0);

        for k in (min_overlap..self.segment_length).rev() {
            // Rebuild the prefix index for this round (non-transactional,
            // records' segments are immutable).
            let mut index: std::collections::HashMap<i64, Vec<i64>> =
                std::collections::HashMap::new();
            for &rec in &self.records {
                let seg = stm.read_now(field(rec, L_SEG));
                index
                    .entry(Self::prefix(seg, self.segment_length, k))
                    .or_default()
                    .push(rec);
            }
            let index = &index;
            let links_ref = &links;
            std::thread::scope(|s| {
                for t in 0..threads {
                    let records = &self.records;
                    s.spawn(move || {
                        let mut local = 0;
                        let mut i = t;
                        while i < records.len() {
                            let rec = records[i];
                            if stm.read_now(field(rec, L_NEXT)) == NIL
                                && self.try_link(stm, rec, k, index)
                            {
                                local += 1;
                            }
                            i += threads;
                        }
                        links_ref.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            });
        }
        *links.get_mut()
    }

    /// Quiescent phase-2 invariants: every successor is claimed exactly
    /// once, recorded overlaps really match, and following links never
    /// cycles.
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        let mut claimed_by: std::collections::HashMap<i64, i64> = std::collections::HashMap::new();
        for &rec in &self.records {
            let next = stm.read_now(field(rec, L_NEXT));
            if next == NIL {
                continue;
            }
            if stm.read_now(field(next, L_CLAIMED)) != 1 {
                return Err(format!("record {rec}: successor {next} not claimed"));
            }
            if let Some(prev) = claimed_by.insert(next, rec) {
                return Err(format!("record {next} claimed by both {prev} and {rec}"));
            }
            let k = stm.read_now(field(rec, L_OVERLAP)) as usize;
            if k == 0 || k >= self.segment_length {
                return Err(format!("record {rec}: bogus overlap {k}"));
            }
            let s_me = stm.read_now(field(rec, L_SEG));
            let s_next = stm.read_now(field(next, L_SEG));
            if Self::suffix(s_me, k) != Self::prefix(s_next, self.segment_length, k) {
                return Err(format!("record {rec}: overlap {k} does not actually match"));
            }
        }
        // Acyclic: every chain must reach NIL within |records| steps.
        for &rec in &self.records {
            let mut cur = rec;
            let mut steps = 0;
            loop {
                let next = stm.read_now(field(cur, L_NEXT));
                if next == NIL {
                    break;
                }
                steps += 1;
                if steps > self.records.len() {
                    return Err(format!("cycle through record {rec}"));
                }
                cur = next;
            }
        }
        Ok(())
    }
}

/// Measured run: deduplicate the whole stream across threads.
pub fn run(stm: &Stm, config: GenomeConfig, threads: usize, seed: u64) -> RunResult {
    let g = Genome::new(stm, config, seed);
    let batches = (config.segments / config.inserts_per_tx) as u64;
    let r = run_fixed_work(stm, threads, batches, seed, |_tid, i, _rng| {
        let lo = i as usize * config.inserts_per_tx;
        let indices: Vec<usize> = (lo..lo + config.inserts_per_tx).collect();
        g.dedup_tx(stm, &indices);
    });
    g.verify(stm).expect("genome dedup incorrect");
    // Phase 2: overlap matching over the deduplicated segments.
    let matcher = Matcher::new(stm, &g);
    matcher.run_matching(stm, threads, config.segment_length.saturating_sub(4).max(1));
    matcher.verify(stm).expect("genome matching incorrect");
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 18).orec_count(1 << 10))
    }

    fn small() -> GenomeConfig {
        GenomeConfig {
            genome_length: 256,
            segment_length: 8,
            segments: 512,
            buckets: 16,
            inserts_per_tx: 4,
        }
    }

    #[test]
    fn dedup_matches_ground_truth_single_thread() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let r = run(&s, small(), 1, 3);
            assert!(r.total_ops > 0, "{alg}");
        }
    }

    #[test]
    fn dedup_matches_ground_truth_concurrent() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let s = stm(alg);
            let _ = run(&s, small(), 4, 5);
        }
    }

    #[test]
    fn profile_is_essentially_read_only() {
        // Table 3: Genome's traffic is value-carrying reads; only the
        // rare phase-2 claim check converts (0.06 compares/tx in the
        // paper — a sub-1% residue here too).
        let s = stm(Algorithm::SNOrec);
        let _ = run(&s, small(), 1, 9);
        let st = s.stats();
        assert!(st.reads > 0);
        assert!(
            (st.cmps + st.cmp_pairs) as f64 <= 0.2 * st.reads as f64,
            "compares must stay a residue: {} cmps vs {} reads",
            st.cmps,
            st.reads
        );
        assert_eq!(st.incs, 0);
    }

    #[test]
    fn matching_links_respect_invariants() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let s = stm(alg);
            let g = Genome::new(&s, small(), 31);
            // Phase 1 single-threaded for determinism.
            for i in 0..(small().segments / small().inserts_per_tx) {
                let lo = i * small().inserts_per_tx;
                let indices: Vec<usize> = (lo..lo + small().inserts_per_tx).collect();
                g.dedup_tx(&s, &indices);
            }
            let m = Matcher::new(&s, &g);
            assert!(!m.is_empty());
            let links = m.run_matching(&s, 4, 4);
            assert!(links > 0, "{alg}: overlapping windows must chain");
            m.verify(&s).unwrap_or_else(|e| panic!("{alg}: {e}"));
        }
    }
}
