//! STAMP application ports (Minh et al., IISWC 2008), restructured over
//! the semantic TM API. See DESIGN.md for the substitution notes.

pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod rbtree;
pub mod ssca2;
pub mod tmap;
pub mod vacation;
pub mod yada;
