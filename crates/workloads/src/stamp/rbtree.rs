//! A transactional **red-black tree** over the TM heap — the exact index
//! structure STAMP's Vacation uses.
//!
//! CLRS-style implementation with parent pointers and a per-tree
//! sentinel NIL node. All node fields live in transactional heap words,
//! so rotations and fixups are ordinary transactional reads/writes and
//! the tree is linearizable under any of the four algorithms.
//!
//! Note on the sentinel: `transplant`/`delete-fixup` write the
//! sentinel's parent field (as in CLRS), which serialises concurrent
//! deletes through one hot word. That is a performance artifact the real
//! STAMP tree shares, not a correctness issue — under TM the writes are
//! isolated like any other.
//!
//! Node layout (6 heap words): `key, value, left, right, parent, color`.

use semtm_core::{Abort, Addr, Stm, TVar, Tx};

const KEY: usize = 0;
const VAL: usize = 1;
const LEFT: usize = 2;
const RIGHT: usize = 3;
const PARENT: usize = 4;
const COLOR: usize = 5;

const RED: i64 = 1;
const BLACK: i64 = 0;

#[inline]
fn field(node: i64, f: usize) -> Addr {
    debug_assert!(node >= 0);
    Addr::from_index(node as usize + f)
}

/// Transactional red-black map from `i64` keys to one `i64` value word.
pub struct RbMap {
    root: TVar<i64>,
    /// The sentinel NIL node (black; child/parent fields are scratch).
    nil: i64,
}

impl RbMap {
    /// Create an empty map (allocates the sentinel).
    pub fn new(stm: &Stm) -> RbMap {
        let nil = stm.alloc(6);
        let nil_id = nil.index() as i64;
        stm.write_now(nil.offset(KEY), 0);
        stm.write_now(nil.offset(VAL), 0);
        stm.write_now(nil.offset(LEFT), nil_id);
        stm.write_now(nil.offset(RIGHT), nil_id);
        stm.write_now(nil.offset(PARENT), nil_id);
        stm.write_now(nil.offset(COLOR), BLACK);
        RbMap {
            root: TVar::new(stm, nil_id),
            nil: nil_id,
        }
    }

    #[inline]
    fn is_nil(&self, n: i64) -> bool {
        n == self.nil
    }

    fn alloc_node(&self, stm: &Stm, key: i64, value: i64) -> i64 {
        let a = stm.alloc(6);
        let id = a.index() as i64;
        stm.write_now(a.offset(KEY), key);
        stm.write_now(a.offset(VAL), value);
        stm.write_now(a.offset(LEFT), self.nil);
        stm.write_now(a.offset(RIGHT), self.nil);
        stm.write_now(a.offset(PARENT), self.nil);
        stm.write_now(a.offset(COLOR), RED);
        id
    }

    // --- field helpers (transactional) ---
    fn get_f(&self, tx: &mut Tx<'_>, n: i64, f: usize) -> Result<i64, Abort> {
        tx.read(field(n, f))
    }
    fn set_f(&self, tx: &mut Tx<'_>, n: i64, f: usize, v: i64) -> Result<(), Abort> {
        tx.write(field(n, f), v)
    }

    /// Transactional lookup (plain traversal reads, like STAMP's).
    pub fn get(&self, tx: &mut Tx<'_>, key: i64) -> Result<Option<i64>, Abort> {
        let mut cur = self.root.read(tx)?;
        while !self.is_nil(cur) {
            let k = self.get_f(tx, cur, KEY)?;
            if key == k {
                return Ok(Some(self.get_f(tx, cur, VAL)?));
            }
            cur = self.get_f(tx, cur, if key < k { LEFT } else { RIGHT })?;
        }
        Ok(None)
    }

    /// Whether `key` is present.
    pub fn contains(&self, tx: &mut Tx<'_>, key: i64) -> Result<bool, Abort> {
        Ok(self.get(tx, key)?.is_some())
    }

    fn rotate_left(&self, tx: &mut Tx<'_>, x: i64) -> Result<(), Abort> {
        let y = self.get_f(tx, x, RIGHT)?;
        let yl = self.get_f(tx, y, LEFT)?;
        self.set_f(tx, x, RIGHT, yl)?;
        if !self.is_nil(yl) {
            self.set_f(tx, yl, PARENT, x)?;
        }
        let xp = self.get_f(tx, x, PARENT)?;
        self.set_f(tx, y, PARENT, xp)?;
        if self.is_nil(xp) {
            self.root.write(tx, y)?;
        } else if self.get_f(tx, xp, LEFT)? == x {
            self.set_f(tx, xp, LEFT, y)?;
        } else {
            self.set_f(tx, xp, RIGHT, y)?;
        }
        self.set_f(tx, y, LEFT, x)?;
        self.set_f(tx, x, PARENT, y)?;
        Ok(())
    }

    fn rotate_right(&self, tx: &mut Tx<'_>, x: i64) -> Result<(), Abort> {
        let y = self.get_f(tx, x, LEFT)?;
        let yr = self.get_f(tx, y, RIGHT)?;
        self.set_f(tx, x, LEFT, yr)?;
        if !self.is_nil(yr) {
            self.set_f(tx, yr, PARENT, x)?;
        }
        let xp = self.get_f(tx, x, PARENT)?;
        self.set_f(tx, y, PARENT, xp)?;
        if self.is_nil(xp) {
            self.root.write(tx, y)?;
        } else if self.get_f(tx, xp, RIGHT)? == x {
            self.set_f(tx, xp, RIGHT, y)?;
        } else {
            self.set_f(tx, xp, LEFT, y)?;
        }
        self.set_f(tx, y, RIGHT, x)?;
        self.set_f(tx, x, PARENT, y)?;
        Ok(())
    }

    /// Insert `key -> value`; overwrites and returns `false` if present.
    pub fn insert(&self, stm: &Stm, tx: &mut Tx<'_>, key: i64, value: i64) -> Result<bool, Abort> {
        let mut parent = self.nil;
        let mut cur = self.root.read(tx)?;
        while !self.is_nil(cur) {
            let k = self.get_f(tx, cur, KEY)?;
            if key == k {
                self.set_f(tx, cur, VAL, value)?;
                return Ok(false);
            }
            parent = cur;
            cur = self.get_f(tx, cur, if key < k { LEFT } else { RIGHT })?;
        }
        let z = self.alloc_node(stm, key, value);
        self.set_f(tx, z, PARENT, parent)?;
        if self.is_nil(parent) {
            self.root.write(tx, z)?;
        } else {
            let pk = self.get_f(tx, parent, KEY)?;
            self.set_f(tx, parent, if key < pk { LEFT } else { RIGHT }, z)?;
        }
        self.insert_fixup(tx, z)?;
        Ok(true)
    }

    fn insert_fixup(&self, tx: &mut Tx<'_>, mut z: i64) -> Result<(), Abort> {
        loop {
            let zp = self.get_f(tx, z, PARENT)?;
            if self.is_nil(zp) || self.get_f(tx, zp, COLOR)? == BLACK {
                break;
            }
            let zpp = self.get_f(tx, zp, PARENT)?;
            debug_assert!(!self.is_nil(zpp), "red node's parent is red root?");
            if self.get_f(tx, zpp, LEFT)? == zp {
                let uncle = self.get_f(tx, zpp, RIGHT)?;
                if !self.is_nil(uncle) && self.get_f(tx, uncle, COLOR)? == RED {
                    self.set_f(tx, zp, COLOR, BLACK)?;
                    self.set_f(tx, uncle, COLOR, BLACK)?;
                    self.set_f(tx, zpp, COLOR, RED)?;
                    z = zpp;
                } else {
                    if self.get_f(tx, zp, RIGHT)? == z {
                        z = zp;
                        self.rotate_left(tx, z)?;
                    }
                    let zp = self.get_f(tx, z, PARENT)?;
                    let zpp = self.get_f(tx, zp, PARENT)?;
                    self.set_f(tx, zp, COLOR, BLACK)?;
                    self.set_f(tx, zpp, COLOR, RED)?;
                    self.rotate_right(tx, zpp)?;
                }
            } else {
                let uncle = self.get_f(tx, zpp, LEFT)?;
                if !self.is_nil(uncle) && self.get_f(tx, uncle, COLOR)? == RED {
                    self.set_f(tx, zp, COLOR, BLACK)?;
                    self.set_f(tx, uncle, COLOR, BLACK)?;
                    self.set_f(tx, zpp, COLOR, RED)?;
                    z = zpp;
                } else {
                    if self.get_f(tx, zp, LEFT)? == z {
                        z = zp;
                        self.rotate_right(tx, z)?;
                    }
                    let zp = self.get_f(tx, z, PARENT)?;
                    let zpp = self.get_f(tx, zp, PARENT)?;
                    self.set_f(tx, zp, COLOR, BLACK)?;
                    self.set_f(tx, zpp, COLOR, RED)?;
                    self.rotate_left(tx, zpp)?;
                }
            }
        }
        let root = self.root.read(tx)?;
        self.set_f(tx, root, COLOR, BLACK)?;
        Ok(())
    }

    /// Replace subtree `u` with subtree `v` (CLRS transplant). Writes
    /// `v`'s parent even when `v` is the sentinel, as CLRS does.
    fn transplant(&self, tx: &mut Tx<'_>, u: i64, v: i64) -> Result<(), Abort> {
        let up = self.get_f(tx, u, PARENT)?;
        if self.is_nil(up) {
            self.root.write(tx, v)?;
        } else if self.get_f(tx, up, LEFT)? == u {
            self.set_f(tx, up, LEFT, v)?;
        } else {
            self.set_f(tx, up, RIGHT, v)?;
        }
        self.set_f(tx, v, PARENT, up)?;
        Ok(())
    }

    fn minimum(&self, tx: &mut Tx<'_>, mut n: i64) -> Result<i64, Abort> {
        loop {
            let l = self.get_f(tx, n, LEFT)?;
            if self.is_nil(l) {
                return Ok(n);
            }
            n = l;
        }
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&self, tx: &mut Tx<'_>, key: i64) -> Result<Option<i64>, Abort> {
        // Find the node.
        let mut z = self.root.read(tx)?;
        loop {
            if self.is_nil(z) {
                return Ok(None);
            }
            let k = self.get_f(tx, z, KEY)?;
            if key == k {
                break;
            }
            z = self.get_f(tx, z, if key < k { LEFT } else { RIGHT })?;
        }
        let removed = self.get_f(tx, z, VAL)?;

        let mut y = z;
        let mut y_color = self.get_f(tx, y, COLOR)?;
        let x;
        let zl = self.get_f(tx, z, LEFT)?;
        let zr = self.get_f(tx, z, RIGHT)?;
        if self.is_nil(zl) {
            x = zr;
            self.transplant(tx, z, zr)?;
        } else if self.is_nil(zr) {
            x = zl;
            self.transplant(tx, z, zl)?;
        } else {
            y = self.minimum(tx, zr)?;
            y_color = self.get_f(tx, y, COLOR)?;
            x = self.get_f(tx, y, RIGHT)?;
            if self.get_f(tx, y, PARENT)? == z {
                self.set_f(tx, x, PARENT, y)?; // may write the sentinel
            } else {
                self.transplant(tx, y, x)?;
                self.set_f(tx, y, RIGHT, zr)?;
                self.set_f(tx, zr, PARENT, y)?;
            }
            self.transplant(tx, z, y)?;
            let zl2 = self.get_f(tx, z, LEFT)?;
            self.set_f(tx, y, LEFT, zl2)?;
            self.set_f(tx, zl2, PARENT, y)?;
            let zc = self.get_f(tx, z, COLOR)?;
            self.set_f(tx, y, COLOR, zc)?;
        }
        if y_color == BLACK {
            self.delete_fixup(tx, x)?;
        }
        Ok(Some(removed))
    }

    fn delete_fixup(&self, tx: &mut Tx<'_>, mut x: i64) -> Result<(), Abort> {
        loop {
            let root = self.root.read(tx)?;
            if x == root || self.get_f(tx, x, COLOR)? == RED {
                break;
            }
            let xp = self.get_f(tx, x, PARENT)?;
            if self.get_f(tx, xp, LEFT)? == x {
                let mut w = self.get_f(tx, xp, RIGHT)?;
                if self.get_f(tx, w, COLOR)? == RED {
                    self.set_f(tx, w, COLOR, BLACK)?;
                    self.set_f(tx, xp, COLOR, RED)?;
                    self.rotate_left(tx, xp)?;
                    w = self.get_f(tx, xp, RIGHT)?;
                }
                let wl = self.get_f(tx, w, LEFT)?;
                let wr = self.get_f(tx, w, RIGHT)?;
                let wl_black = self.is_nil(wl) || self.get_f(tx, wl, COLOR)? == BLACK;
                let wr_black = self.is_nil(wr) || self.get_f(tx, wr, COLOR)? == BLACK;
                if wl_black && wr_black {
                    self.set_f(tx, w, COLOR, RED)?;
                    x = xp;
                } else {
                    if wr_black {
                        if !self.is_nil(wl) {
                            self.set_f(tx, wl, COLOR, BLACK)?;
                        }
                        self.set_f(tx, w, COLOR, RED)?;
                        self.rotate_right(tx, w)?;
                        w = self.get_f(tx, xp, RIGHT)?;
                    }
                    let xpc = self.get_f(tx, xp, COLOR)?;
                    self.set_f(tx, w, COLOR, xpc)?;
                    self.set_f(tx, xp, COLOR, BLACK)?;
                    let wr2 = self.get_f(tx, w, RIGHT)?;
                    if !self.is_nil(wr2) {
                        self.set_f(tx, wr2, COLOR, BLACK)?;
                    }
                    self.rotate_left(tx, xp)?;
                    x = self.root.read(tx)?;
                }
            } else {
                let mut w = self.get_f(tx, xp, LEFT)?;
                if self.get_f(tx, w, COLOR)? == RED {
                    self.set_f(tx, w, COLOR, BLACK)?;
                    self.set_f(tx, xp, COLOR, RED)?;
                    self.rotate_right(tx, xp)?;
                    w = self.get_f(tx, xp, LEFT)?;
                }
                let wl = self.get_f(tx, w, LEFT)?;
                let wr = self.get_f(tx, w, RIGHT)?;
                let wl_black = self.is_nil(wl) || self.get_f(tx, wl, COLOR)? == BLACK;
                let wr_black = self.is_nil(wr) || self.get_f(tx, wr, COLOR)? == BLACK;
                if wl_black && wr_black {
                    self.set_f(tx, w, COLOR, RED)?;
                    x = xp;
                } else {
                    if wl_black {
                        if !self.is_nil(wr) {
                            self.set_f(tx, wr, COLOR, BLACK)?;
                        }
                        self.set_f(tx, w, COLOR, RED)?;
                        self.rotate_left(tx, w)?;
                        w = self.get_f(tx, xp, LEFT)?;
                    }
                    let xpc = self.get_f(tx, xp, COLOR)?;
                    self.set_f(tx, w, COLOR, xpc)?;
                    self.set_f(tx, xp, COLOR, BLACK)?;
                    let wl2 = self.get_f(tx, w, LEFT)?;
                    if !self.is_nil(wl2) {
                        self.set_f(tx, wl2, COLOR, BLACK)?;
                    }
                    self.rotate_right(tx, xp)?;
                    x = self.root.read(tx)?;
                }
            }
        }
        if !self.is_nil(x) {
            self.set_f(tx, x, COLOR, BLACK)?;
        }
        Ok(())
    }

    /// Non-transactional in-order walk (quiescent verification only).
    pub fn for_each_now(&self, stm: &Stm, mut f: impl FnMut(i64, i64)) {
        fn walk(stm: &Stm, nil: i64, node: i64, f: &mut impl FnMut(i64, i64)) {
            if node == nil {
                return;
            }
            walk(stm, nil, stm.read_now(field(node, LEFT)), f);
            f(
                stm.read_now(field(node, KEY)),
                stm.read_now(field(node, VAL)),
            );
            walk(stm, nil, stm.read_now(field(node, RIGHT)), f);
        }
        walk(stm, self.nil, self.root.read_now(stm), &mut f);
    }

    /// Quiescent element count.
    pub fn len_now(&self, stm: &Stm) -> usize {
        let mut n = 0;
        self.for_each_now(stm, |_, _| n += 1);
        n
    }

    /// Quiescent structural verification: BST order, red nodes have
    /// black children, equal black height on every path, correct parent
    /// pointers, black root. Returns the tree's black height.
    pub fn verify(&self, stm: &Stm) -> Result<usize, String> {
        let root = self.root.read_now(stm);
        if root != self.nil {
            if stm.read_now(field(root, COLOR)) != BLACK {
                return Err("root is red".into());
            }
            if stm.read_now(field(root, PARENT)) != self.nil {
                return Err("root has a parent".into());
            }
        }
        let mut last: Option<i64> = None;
        let mut order_err = None;
        self.for_each_now(stm, |k, _| {
            if let Some(prev) = last {
                if prev >= k && order_err.is_none() {
                    order_err = Some(format!("BST order violated: {prev} >= {k}"));
                }
            }
            last = Some(k);
        });
        if let Some(e) = order_err {
            return Err(e);
        }
        self.check_node(stm, root)
    }

    fn check_node(&self, stm: &Stm, n: i64) -> Result<usize, String> {
        if n == self.nil {
            return Ok(1); // nil leaves are black
        }
        let color = stm.read_now(field(n, COLOR));
        if color != RED && color != BLACK {
            return Err(format!("node {n} has bogus color {color}"));
        }
        for side in [LEFT, RIGHT] {
            let c = stm.read_now(field(n, side));
            if c != self.nil {
                if stm.read_now(field(c, PARENT)) != n {
                    return Err(format!("node {c}: bad parent pointer"));
                }
                if color == RED && stm.read_now(field(c, COLOR)) == RED {
                    return Err(format!("red node {n} has red child {c}"));
                }
            }
        }
        let lh = self.check_node(stm, stm.read_now(field(n, LEFT)))?;
        let rh = self.check_node(stm, stm.read_now(field(n, RIGHT)))?;
        if lh != rh {
            return Err(format!("black-height mismatch at node {n}: {lh} vs {rh}"));
        }
        Ok(lh + usize::from(color == BLACK))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::util::SplitMix64;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 20).orec_count(1 << 10))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let m = RbMap::new(&s);
            for k in [5i64, 2, 8, 1, 3, 7, 9, 6] {
                assert!(s.atomic(|tx| m.insert(&s, tx, k, k * 10)), "{alg}");
                m.verify(&s)
                    .unwrap_or_else(|e| panic!("{alg} after insert {k}: {e}"));
            }
            assert!(!s.atomic(|tx| m.insert(&s, tx, 5, 55)), "overwrite");
            assert_eq!(s.atomic(|tx| m.get(tx, 5)), Some(55));
            for k in [1i64, 9, 5, 2, 8, 3, 7, 6] {
                assert!(s.atomic(|tx| m.remove(tx, k)).is_some(), "{alg} remove {k}");
                m.verify(&s)
                    .unwrap_or_else(|e| panic!("{alg} after remove {k}: {e}"));
            }
            assert_eq!(m.len_now(&s), 0);
        }
    }

    #[test]
    fn random_workout_matches_model_and_stays_balanced() {
        let s = stm(Algorithm::SNOrec);
        let m = RbMap::new(&s);
        let mut model = std::collections::BTreeMap::new();
        let mut rng = SplitMix64::new(2024);
        for step in 0..1500 {
            let key = rng.below(128) as i64;
            match rng.below(3) {
                0 => {
                    let fresh = s.atomic(|tx| m.insert(&s, tx, key, key * 3));
                    assert_eq!(fresh, model.insert(key, key * 3).is_none(), "step {step}");
                }
                1 => {
                    let got = s.atomic(|tx| m.get(tx, key));
                    assert_eq!(got, model.get(&key).copied(), "step {step}");
                }
                _ => {
                    let got = s.atomic(|tx| m.remove(tx, key));
                    assert_eq!(got, model.remove(&key), "step {step}");
                }
            }
            if step % 100 == 0 {
                m.verify(&s).unwrap_or_else(|e| panic!("step {step}: {e}"));
            }
        }
        m.verify(&s).unwrap();
        let mut pairs = Vec::new();
        m.for_each_now(&s, |k, v| pairs.push((k, v)));
        assert_eq!(pairs, model.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn sequential_inserts_stay_logarithmic() {
        // The workload that ruins a plain BST: monotonically increasing
        // keys. The RB invariants (verified) bound the height.
        let s = stm(Algorithm::STl2);
        let m = RbMap::new(&s);
        for k in 0..512i64 {
            s.atomic(|tx| m.insert(&s, tx, k, k));
        }
        let bh = m.verify(&s).unwrap();
        // Black height of a 512-node RB tree is at most ~log2(n)+1.
        assert!(bh <= 11, "black height {bh} too large");
        assert_eq!(m.len_now(&s), 512);
    }

    #[test]
    fn concurrent_mixed_operations_keep_invariants() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let s = stm(alg);
            let m = RbMap::new(&s);
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    let s = &s;
                    let m = &m;
                    scope.spawn(move || {
                        let mut rng = SplitMix64::new(t + 7);
                        for _ in 0..200 {
                            let key = rng.below(96) as i64;
                            match rng.below(3) {
                                0 => {
                                    s.atomic(|tx| m.insert(s, tx, key, key));
                                }
                                1 => {
                                    s.atomic(|tx| m.get(tx, key));
                                }
                                _ => {
                                    s.atomic(|tx| m.remove(tx, key));
                                }
                            }
                        }
                    });
                }
            });
            m.verify(&s)
                .unwrap_or_else(|e| panic!("{alg}: RB invariants broken: {e}"));
        }
    }
}
