//! STAMP **Kmeans** — iterative clustering (paper §3.1 Algorithm 5 and
//! §7.1).
//!
//! Each iteration assigns every point to its nearest centre (pure local
//! arithmetic over an immutable snapshot of the centres) and accumulates
//! the new centres in shared memory. The accumulation transaction is
//! Algorithm 5 verbatim: one `TM_INC` on the cluster population and one
//! `TM_INC` per feature — under the baselines these delegate to
//! read+write pairs, which is exactly the "base" Kmeans column of
//! Table 3 (25 reads + 25 writes vs 25 increments).
//!
//! Features use the [`Fx32`] fixed-point codec so that increments are
//! exact word additions (DESIGN.md §7).

use crate::driver::{run_fixed_work, RunResult};
use semtm_core::util::SplitMix64;
use semtm_core::{Fx32, Stm, TArray};

/// Kmeans configuration.
#[derive(Clone, Copy, Debug)]
pub struct KmeansConfig {
    /// Number of points.
    pub points: usize,
    /// Features per point.
    pub features: usize,
    /// Number of clusters (k).
    pub clusters: usize,
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Convergence threshold: stop when fewer than this per-mille of
    /// points change membership.
    pub threshold_per_mille: u32,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        KmeansConfig {
            points: 2048,
            features: 16,
            clusters: 8,
            max_iterations: 10,
            threshold_per_mille: 5,
        }
    }
}

/// Shared accumulation state + immutable input data.
pub struct Kmeans {
    /// Flattened `points x features` input (immutable during a run).
    data: Vec<Fx32>,
    /// Shared `clusters x features` accumulator (transactional).
    new_centers: TArray<Fx32>,
    /// Shared per-cluster population (transactional).
    new_centers_len: TArray<i64>,
    config: KmeansConfig,
}

impl Kmeans {
    /// Generate a synthetic clustered dataset and allocate the shared
    /// accumulators.
    pub fn new(stm: &Stm, config: KmeansConfig, seed: u64) -> Kmeans {
        let mut rng = SplitMix64::new(seed);
        let mut data = Vec::with_capacity(config.points * config.features);
        for p in 0..config.points {
            // Points scatter around one of `clusters` synthetic centres.
            let c = p % config.clusters;
            for f in 0..config.features {
                let centre = ((c * 37 + f * 11) % 100) as f64;
                let noise = rng.below(2000) as f64 / 100.0 - 10.0;
                data.push(Fx32::from_f64(centre + noise));
            }
        }
        Kmeans {
            data,
            new_centers: TArray::new(stm, config.clusters * config.features, Fx32::ZERO),
            new_centers_len: TArray::new(stm, config.clusters, 0),
            config,
        }
    }

    #[inline]
    fn feature(&self, point: usize, f: usize) -> Fx32 {
        self.data[point * self.config.features + f]
    }

    fn nearest(&self, point: usize, centers: &[Fx32]) -> usize {
        let mut best = 0;
        let mut best_d = i64::MAX;
        for c in 0..self.config.clusters {
            let mut d: i64 = 0;
            for f in 0..self.config.features {
                let diff = self.feature(point, f) - centers[c * self.config.features + f];
                d = d.saturating_add((diff * diff).0);
            }
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Run the full clustering; returns (iterations executed, final
    /// memberships) and leaves per-run stats on `stm`.
    pub fn run_clustering(&self, stm: &Stm, threads: usize, seed: u64) -> (usize, Vec<usize>) {
        let cfg = self.config;
        let mut centers: Vec<Fx32> = (0..cfg.clusters * cfg.features)
            .map(|i| self.data[i % self.data.len()])
            .collect();
        let membership: Vec<std::sync::atomic::AtomicUsize> =
            (0..cfg.points).map(|_| Default::default()).collect();
        let changed = std::sync::atomic::AtomicUsize::new(usize::MAX);
        let mut iterations = 0;

        while iterations < cfg.max_iterations
            && changed.load(std::sync::atomic::Ordering::Relaxed)
                > cfg.points * cfg.threshold_per_mille as usize / 1000
        {
            changed.store(0, std::sync::atomic::Ordering::Relaxed);
            // Reset accumulators (quiescent).
            for c in 0..cfg.clusters {
                self.new_centers_len.write_now(stm, c, 0);
                for f in 0..cfg.features {
                    self.new_centers
                        .write_now(stm, c * cfg.features + f, Fx32::ZERO);
                }
            }
            let centers_ref = &centers;
            let membership_ref = &membership;
            let changed_ref = &changed;
            run_fixed_work(stm, threads, cfg.points as u64, seed, |_tid, i, _rng| {
                let p = i as usize;
                let c = self.nearest(p, centers_ref);
                let prev = membership_ref[p].swap(c, std::sync::atomic::Ordering::Relaxed);
                if prev != c || iterations == 0 {
                    changed_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                let base = c * cfg.features;
                stm.atomic(|tx| {
                    self.new_centers_len.inc(tx, c, 1)?;
                    for f in 0..cfg.features {
                        self.new_centers.inc(tx, base + f, self.feature(p, f))?;
                    }
                    Ok(())
                });
            });
            // Master step: fold accumulators into the next centres.
            for c in 0..cfg.clusters {
                let n = self.new_centers_len.read_now(stm, c).max(1);
                for f in 0..cfg.features {
                    centers[c * cfg.features + f] = self
                        .new_centers
                        .read_now(stm, c * cfg.features + f)
                        .div_int(n);
                }
            }
            iterations += 1;
        }
        let final_membership = membership.into_iter().map(|a| a.into_inner()).collect();
        (iterations, final_membership)
    }

    /// Quiescent check after one accumulation pass: populations sum to
    /// the number of points processed.
    pub fn population_now(&self, stm: &Stm) -> i64 {
        (0..self.config.clusters)
            .map(|c| self.new_centers_len.read_now(stm, c))
            .sum()
    }
}

/// Measured run for the figure harness: full clustering, reporting the
/// wall-clock time (Figure 1g) and abort rate (Figure 1h).
pub fn run(stm: &Stm, config: KmeansConfig, threads: usize, seed: u64) -> RunResult {
    let km = Kmeans::new(stm, config, seed);
    let before = stm.stats();
    let start = std::time::Instant::now();
    let (iterations, _) = km.run_clustering(stm, threads, seed);
    let elapsed = start.elapsed();
    RunResult {
        threads,
        elapsed,
        total_ops: (iterations * config.points) as u64,
        stats: stm.stats().since(&before),
        setup_commits: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 14).orec_count(1 << 8))
    }

    fn small() -> KmeansConfig {
        KmeansConfig {
            points: 128,
            features: 4,
            clusters: 4,
            max_iterations: 5,
            ..KmeansConfig::default()
        }
    }

    #[test]
    fn accumulators_sum_to_point_count() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let km = Kmeans::new(&s, small(), 7);
            let (iters, membership) = km.run_clustering(&s, 2, 7);
            assert!(iters >= 1, "{alg}");
            assert_eq!(membership.len(), 128);
            assert_eq!(
                km.population_now(&s),
                128,
                "{alg}: last pass must count every point exactly once"
            );
        }
    }

    #[test]
    fn clustering_separates_synthetic_clusters() {
        let s = stm(Algorithm::SNOrec);
        let km = Kmeans::new(&s, small(), 11);
        let (_, membership) = km.run_clustering(&s, 1, 11);
        // Points were generated around cluster (p % 4); the learned
        // membership must be consistent within each generator class for
        // a large majority of points.
        let mut votes = vec![[0usize; 4]; 4];
        for (p, &m) in membership.iter().enumerate() {
            votes[p % 4][m] += 1;
        }
        for class_votes in votes {
            let max = *class_votes.iter().max().unwrap();
            let total: usize = class_votes.iter().sum();
            assert!(max * 10 >= total * 7, "class not cohesive: {class_votes:?}");
        }
    }

    #[test]
    fn semantic_profile_is_increment_only() {
        let s = stm(Algorithm::SNOrec);
        let km = Kmeans::new(&s, small(), 3);
        km.run_clustering(&s, 1, 3);
        let st = s.stats();
        assert_eq!(st.reads, 0, "accumulation must be pure TM_INC");
        assert_eq!(st.writes, 0);
        assert!(st.incs_per_tx() > 4.0, "1 + features increments per tx");
    }

    #[test]
    fn base_profile_is_read_write_pairs() {
        let s = stm(Algorithm::Tl2);
        let km = Kmeans::new(&s, small(), 3);
        km.run_clustering(&s, 1, 3);
        let st = s.stats();
        assert_eq!(st.incs, 0);
        assert!(st.reads_per_tx() > 4.0);
        assert!((st.reads_per_tx() - st.writes_per_tx()).abs() < 1e-9);
    }

    #[test]
    fn concurrent_accumulation_loses_nothing() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let km = Kmeans::new(&s, small(), 5);
            km.run_clustering(&s, 4, 5);
            assert_eq!(km.population_now(&s), 128, "{alg}");
        }
    }
}
