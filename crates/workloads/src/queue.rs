//! Array-based concurrent queue (paper §3.1, Algorithm 3).
//!
//! "Any efficient concurrent queue implementation should let an enqueue
//! operation execute concurrently with a dequeue operation if the queue
//! is not empty. However, this case is not allowed using traditional TM
//! constructs because the dequeue operation compares the head with the
//! tail in order to detect the special case of an empty queue."
//!
//! `head` and `tail` are monotonically increasing cursors; slot `i` lives
//! at `buffer[i % capacity]`. The emptiness test is the address–address
//! semantic compare `TM_EQ(head, tail)`, and cursor advances are
//! `TM_INC` — so under S-NOrec/S-TL2 an enqueue (which moves `tail`) no
//! longer aborts a concurrent dequeuer whose only dependence on `tail`
//! is "queue was not empty".

use semtm_core::{Abort, CmpOp, Stm, TArray, TVar, Tx};

/// Bounded transactional FIFO queue of `i64` items.
pub struct TQueue {
    head: TVar<i64>,
    tail: TVar<i64>,
    count: TVar<i64>,
    buffer: TArray<i64>,
    capacity: usize,
}

impl TQueue {
    /// Allocate an empty queue with room for `capacity` items.
    pub fn new(stm: &Stm, capacity: usize) -> TQueue {
        assert!(capacity > 0);
        TQueue {
            head: TVar::new(stm, 0),
            tail: TVar::new(stm, 0),
            count: TVar::new(stm, 0),
            buffer: TArray::new(stm, capacity, 0),
            capacity,
        }
    }

    /// Enqueue `item`; returns `false` when full. The fullness check is a
    /// semantic `TM_LT(count, capacity)`.
    pub fn enqueue(&self, tx: &mut Tx<'_>, item: i64) -> Result<bool, Abort> {
        if !self.count.cmp(tx, CmpOp::Lt, self.capacity as i64)? {
            return Ok(false);
        }
        let t = tx.read(self.tail.addr())?;
        tx.write(self.buffer.addr(t as usize % self.capacity), item)?;
        self.tail.inc(tx, 1)?;
        self.count.inc(tx, 1)?;
        Ok(true)
    }

    /// Dequeue an item; `None` when empty — Algorithm 3 verbatim: the
    /// emptiness test is `TM_EQ(head, tail)` (address–address form), the
    /// slot index comes from a plain read of `head`, and the cursor
    /// advance is `TM_INC(head, 1)`.
    pub fn dequeue(&self, tx: &mut Tx<'_>) -> Result<Option<i64>, Abort> {
        if self.head.cmp_var(tx, CmpOp::Eq, self.tail)? {
            return Ok(None);
        }
        let h = tx.read(self.head.addr())?;
        let item = tx.read(self.buffer.addr(h as usize % self.capacity))?;
        self.head.inc(tx, 1)?;
        self.count.inc(tx, -1)?;
        Ok(Some(item))
    }

    /// Current length (transactional).
    pub fn len(&self, tx: &mut Tx<'_>) -> Result<i64, Abort> {
        self.count.read(tx)
    }

    /// Whether the queue is empty (semantic head/tail compare).
    pub fn is_empty(&self, tx: &mut Tx<'_>) -> Result<bool, Abort> {
        self.head.cmp_var(tx, CmpOp::Eq, self.tail)
    }

    /// Quiescent length.
    pub fn len_now(&self, stm: &Stm) -> i64 {
        self.count.read_now(stm)
    }

    /// Quiescent integrity: `tail - head == count`, `0 <= count <= cap`.
    pub fn verify(&self, stm: &Stm) -> Result<(), String> {
        let h = self.head.read_now(stm);
        let t = self.tail.read_now(stm);
        let c = self.count.read_now(stm);
        if t - h != c {
            return Err(format!("cursor mismatch: tail {t} - head {h} != count {c}"));
        }
        if c < 0 || c > self.capacity as i64 {
            return Err(format!("count {c} out of range 0..={}", self.capacity));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::{Algorithm, StmConfig};

    fn stm(alg: Algorithm) -> Stm {
        Stm::new(StmConfig::new(alg).heap_words(1 << 12).orec_count(1 << 8))
    }

    #[test]
    fn fifo_order_all_algorithms() {
        for alg in Algorithm::ALL {
            let s = stm(alg);
            let q = TQueue::new(&s, 8);
            for i in 1..=5 {
                assert!(s.atomic(|tx| q.enqueue(tx, i)), "{alg}");
            }
            for i in 1..=5 {
                assert_eq!(s.atomic(|tx| q.dequeue(tx)), Some(i), "{alg}");
            }
            assert_eq!(s.atomic(|tx| q.dequeue(tx)), None, "{alg}");
            q.verify(&s).unwrap();
        }
    }

    #[test]
    fn full_queue_rejects_enqueue() {
        let s = stm(Algorithm::SNOrec);
        let q = TQueue::new(&s, 2);
        assert!(s.atomic(|tx| q.enqueue(tx, 1)));
        assert!(s.atomic(|tx| q.enqueue(tx, 2)));
        assert!(!s.atomic(|tx| q.enqueue(tx, 3)), "full");
        assert_eq!(s.atomic(|tx| q.dequeue(tx)), Some(1));
        assert!(s.atomic(|tx| q.enqueue(tx, 3)), "space reclaimed");
        q.verify(&s).unwrap();
    }

    #[test]
    fn wraparound_reuses_slots() {
        let s = stm(Algorithm::STl2);
        let q = TQueue::new(&s, 3);
        for round in 0..5i64 {
            assert!(s.atomic(|tx| q.enqueue(tx, round * 10)));
            assert_eq!(s.atomic(|tx| q.dequeue(tx)), Some(round * 10));
        }
        assert_eq!(q.len_now(&s), 0);
        q.verify(&s).unwrap();
    }

    #[test]
    fn producer_consumer_no_loss_no_dup() {
        for alg in Algorithm::ALL {
            let s = std::sync::Arc::new(stm(alg));
            let q = std::sync::Arc::new(TQueue::new(&s, 16));
            let n = 500i64;
            let consumer = {
                let s = s.clone();
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while got.len() < n as usize {
                        if let Some(v) = s.atomic(|tx| q.dequeue(tx)) {
                            got.push(v);
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    got
                })
            };
            for i in 0..n {
                loop {
                    if s.atomic(|tx| q.enqueue(tx, i)) {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            let got = consumer.join().unwrap();
            let want: Vec<i64> = (0..n).collect();
            assert_eq!(got, want, "{alg}: items lost, duplicated or reordered");
            q.verify(&s).unwrap();
        }
    }

    #[test]
    fn dequeue_survives_concurrent_enqueue_semantically() {
        // Deterministic replay of the paper's queue scenario: a dequeuer
        // checks head != tail; an enqueuer commits (moving tail); the
        // dequeuer must still commit under semantic algorithms.
        let s = stm(Algorithm::SNOrec);
        let q = TQueue::new(&s, 8);
        s.atomic(|tx| q.enqueue(tx, 7));
        s.atomic(|tx| q.enqueue(tx, 8));
        let r = s.try_atomic(|tx| {
            let v = q.dequeue(tx)?;
            // Concurrent enqueue commits mid-transaction.
            s.atomic(|tx2| q.enqueue(tx2, 9));
            Ok(v)
        });
        assert_eq!(r, Ok(Some(7)), "semantic dequeue must not abort");
        q.verify(&s).unwrap();
    }
}
