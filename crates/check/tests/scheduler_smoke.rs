//! Scheduler smoke tests: the exhaustive and random explorers drive
//! real STM transactions through every bounded schedule, histories
//! check out on every execution, and — crucially for the fault-
//! injection regression tests — the exact scenarios those tests arm
//! faults for are clean when the algorithms are unmodified.

use semtm_check::checker::check_history;
use semtm_check::fuzz::check_stm;
use semtm_check::history::{atomic_recorded, Recorder};
use semtm_check::schedule::{explore_exhaustive, explore_random, ExploreOptions};
use semtm_check::vthread::run_threads;
use semtm_core::ops::CmpOp;
use semtm_core::{Algorithm, Stm};

const STEP_CAP: usize = 20_000;

fn opts(max_preemptions: u32) -> ExploreOptions {
    ExploreOptions {
        max_preemptions,
        max_executions: 0,
        step_cap: STEP_CAP,
    }
}

#[test]
fn exhaustive_two_increments_never_lose_updates() {
    for alg in Algorithm::ALL {
        let explored = explore_exhaustive(opts(2), |driver| {
            let stm = check_stm(alg);
            let x = stm.alloc_cell(0i64);
            let body = |_tid: usize, stm: &Stm| {
                stm.atomic(|tx| tx.inc(x, 1));
            };
            let out = run_threads(&stm, &[&body, &body], driver, STEP_CAP);
            if out.capped {
                return Err("step cap exceeded".into());
            }
            let v = stm.read_now(x);
            if v == 2 {
                Ok(())
            } else {
                Err(format!("{alg}: lost update, x = {v}"))
            }
        });
        assert!(explored > 1, "{alg}: expected multiple schedules");
    }
}

#[test]
fn exhaustive_histories_are_opaque_for_racing_writers() {
    // T0: read x, write y = x + 1; T1: write x = 7. Every schedule's
    // full history (including aborted attempts) must pass the checker.
    for alg in Algorithm::ALL {
        explore_exhaustive(opts(2), |driver| {
            let stm = check_stm(alg);
            let x = stm.alloc_cell(1i64);
            let y = stm.alloc_cell(0i64);
            let rec = Recorder::new();
            let shared = (&stm, &rec);
            type Shared<'a> = (&'a Stm, &'a Recorder);
            let t0 = |tid: usize, (stm, rec): &Shared<'_>| {
                atomic_recorded(stm, rec, tid, |tx| {
                    let v = tx.read(x)?;
                    tx.write(y, v + 1)
                });
            };
            let t1 = |tid: usize, (stm, rec): &Shared<'_>| {
                atomic_recorded(stm, rec, tid, |tx| tx.write(x, 7));
            };
            let out = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
            if out.capped {
                return Err("step cap exceeded".into());
            }
            check_history(
                &rec.attempts(),
                &[(x, 1), (y, 0)],
                &[(x, stm.read_now(x)), (y, stm.read_now(y))],
            )
            .map_err(|e| format!("{alg}: {e}"))
        });
    }
}

#[test]
fn random_walks_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut driver = semtm_check::schedule::RandomDriver::new(seed, 40);
        let stm = check_stm(Algorithm::SNOrec);
        let x = stm.alloc_cell(0i64);
        let y = stm.alloc_cell(0i64);
        let rec = Recorder::new();
        let shared = (&stm, &rec);
        type Shared<'a> = (&'a Stm, &'a Recorder);
        let t0 = |tid: usize, (stm, rec): &Shared<'_>| {
            atomic_recorded(stm, rec, tid, |tx| {
                if tx.cmp(x, CmpOp::Gte, 0)? {
                    tx.inc(y, 1)?;
                }
                tx.write(x, 3)
            });
        };
        let t1 = |tid: usize, (stm, rec): &Shared<'_>| {
            atomic_recorded(stm, rec, tid, |tx| {
                tx.inc(x, -2)?;
                tx.write(y, 5)
            });
        };
        run_threads(&shared, &[&t0, &t1], &mut driver, STEP_CAP);
        format!("{:?}", rec.attempts())
    };
    assert_eq!(run(1234), run(1234), "same seed must replay identically");
}

#[test]
fn random_exploration_checks_many_seeds() {
    for alg in Algorithm::ALL {
        explore_random(99, 25, 40, |driver| {
            let stm = check_stm(alg);
            let x = stm.alloc_cell(5i64);
            let y = stm.alloc_cell(0i64);
            let rec = Recorder::new();
            let shared = (&stm, &rec);
            type Shared<'a> = (&'a Stm, &'a Recorder);
            let t0 = |tid: usize, (stm, rec): &Shared<'_>| {
                atomic_recorded(stm, rec, tid, |tx| {
                    if tx.cmp(x, CmpOp::Gt, 0)? {
                        tx.write(y, 1)?;
                    }
                    tx.read(y).map(|_| ())
                });
            };
            let t1 = |tid: usize, (stm, rec): &Shared<'_>| {
                atomic_recorded(stm, rec, tid, |tx| {
                    tx.write(x, -5)?;
                    tx.write(y, 2)
                });
            };
            let out = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
            if out.capped {
                return Err("step cap exceeded".into());
            }
            check_history(
                &rec.attempts(),
                &[(x, 5), (y, 0)],
                &[(x, stm.read_now(x)), (y, stm.read_now(y))],
            )
            .map_err(|e| format!("{alg}: {e}"))
        });
    }
}

// The two scenarios below are byte-for-byte the ones the fault-injection
// regression tests (tests/fault_snorec.rs, tests/fault_tl2.rs) arm
// faults against. Unfaulted they must survive *every* bounded schedule —
// so a fault-test panic can only come from the armed fault.

#[test]
fn snorec_fault_scenario_is_clean_without_the_fault() {
    let explored = explore_exhaustive(opts(3), |driver| {
        semtm_check::scenario::snorec_revalidation(driver)
    });
    assert!(explored > 10, "scenario must branch: {explored} schedules");
}

#[test]
fn tl2_fault_scenario_is_clean_without_the_fault() {
    let explored = explore_exhaustive(opts(3), |driver| {
        semtm_check::scenario::tl2_read_validation(driver)
    });
    assert!(explored > 10, "scenario must branch: {explored} schedules");
}
