//! Clean-run exploration of engine hot-swaps: bounded-preemption
//! schedules of a switch racing transactional commits/aborts — and a
//! switch racing a WAL group-commit flush — must serialize, with no
//! acked-but-not-fsynced commit crossing the switch epoch.
//!
//! The same drain scenario runs *faulted* (drain barrier skipped) in
//! `tests/fault_adapt.rs`, proving the checker would catch the bug
//! these schedules are gating against.
//!
//! The spin waits in the drain/flusher loops branch freely in the DFS
//! (spin switches cost no preemption), so the full bounded trees are
//! far too large to exhaust; each bound instead runs a deterministic
//! DFS *prefix* of a few hundred executions. Calibration: with the
//! drain fault armed, the violating schedule sits at execution 145 of
//! the bound-2 DFS order (649 at bound 3) — the prefixes below cover
//! that neighbourhood several times over.

use semtm_check::scenario;
use semtm_check::schedule::{explore_exhaustive, ExploreOptions};

/// `(preemption bound, execution cap)` pairs the clean sweeps run at.
const BUDGETS: [(u32, usize); 2] = [(1, 400), (2, 800)];

#[test]
fn switch_racing_commits_and_aborts_serializes() {
    for (bound, cap) in BUDGETS {
        let explored = explore_exhaustive(
            ExploreOptions {
                max_preemptions: bound,
                max_executions: cap,
                step_cap: 20_000,
            },
            |driver| scenario::adaptive_switch_drain(driver),
        );
        assert!(explored > 1, "bound {bound}: explored {explored}");
    }
}

#[test]
fn switch_racing_wal_group_commit_flush_keeps_acks_durable() {
    for (bound, cap) in BUDGETS {
        let explored = explore_exhaustive(
            ExploreOptions {
                max_preemptions: bound,
                max_executions: cap,
                step_cap: 20_000,
            },
            |driver| scenario::adaptive_switch_wal_flush(driver),
        );
        assert!(explored > 1, "bound {bound}: explored {explored}");
    }
}
