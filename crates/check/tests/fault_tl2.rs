//! Regression test: the harness catches a deliberately reintroduced
//! TL2 bug (skipping commit-time read-set validation when the commit
//! timestamp moved past the start version).
//!
//! Faults are process-global, so this file holds exactly one test and
//! lives in its own integration-test binary (own process). The same
//! scenario runs *unfaulted* across all schedules in
//! `tests/scheduler_smoke.rs`.

use semtm_check::scenario;
use semtm_check::schedule::{explore_exhaustive, ExploreOptions};
use semtm_core::fault;

#[test]
#[should_panic(expected = "no real-time-consistent serial order")]
fn skipped_tl2_read_validation_is_caught_by_the_checker() {
    fault::arm(fault::TL2_SKIP_READ_VALIDATION);
    explore_exhaustive(
        ExploreOptions {
            max_preemptions: 3,
            max_executions: 0,
            step_cap: 20_000,
        },
        |driver| scenario::tl2_read_validation(driver),
    );
}
