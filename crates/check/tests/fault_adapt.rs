//! Regression test: the harness catches a deliberately broken engine
//! hot-swap (skipping the drain barrier, so an in-flight S-NOrec
//! attempt keeps running across the reseed while later transactions
//! commit under S-TL2 and never move the NOrec sequence lock).
//!
//! Faults are process-global, so this file holds exactly one test and
//! lives in its own integration-test binary (own process). The same
//! scenario runs *unfaulted* across all schedules in
//! `tests/adaptive.rs`, proving the panic here is the armed fault and
//! nothing else.

use semtm_check::scenario;
use semtm_check::schedule::{explore_exhaustive, ExploreOptions};
use semtm_core::fault;

#[test]
#[should_panic(expected = "no real-time-consistent serial order")]
fn skipped_switch_drain_is_caught_by_the_checker() {
    fault::arm(fault::ADAPT_SKIP_DRAIN);
    // The violating schedule (T0 passes its cmp; the undained switch
    // reseeds and publishes S-TL2; T0 extends its snapshot; T1 commits
    // under S-TL2; T0 reads stale-consistently and commits) is reached
    // at execution 649 of this DFS order, in well under a second. The
    // schedule is a global-clock interleaving, so the shard count is
    // pinned to 1 rather than read from `SEMTM_CLOCK_SHARDS`.
    explore_exhaustive(
        ExploreOptions {
            max_preemptions: 3,
            max_executions: 0,
            step_cap: 20_000,
        },
        |driver| scenario::adaptive_switch_drain_sharded(driver, 1),
    );
}
