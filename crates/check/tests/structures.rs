//! Data-structure invariants under the exhaustive scheduler: `TQueue`
//! and `stamp::tmap::TMap` at 2–3 virtual threads, every bounded
//! schedule (previously these were only wall-clock stressed).
//!
//! Bodies use fixed attempt counts — never retry-until-success loops —
//! so the schedule tree stays finite under the default-continue DFS.

use semtm_check::fuzz::check_stm;
use semtm_check::schedule::{explore_exhaustive, ExploreOptions};
use semtm_check::vthread::run_threads;
use semtm_core::{Algorithm, Stm};
use semtm_workloads::queue::TQueue;
use semtm_workloads::stamp::tmap::TMap;
use std::sync::atomic::{AtomicI64, Ordering};

const STEP_CAP: usize = 20_000;

fn opts(max_preemptions: u32, max_executions: usize) -> ExploreOptions {
    ExploreOptions {
        max_preemptions,
        max_executions,
        step_cap: STEP_CAP,
    }
}

#[test]
fn queue_producer_consumer_all_schedules_two_threads() {
    for alg in Algorithm::ALL {
        let explored = explore_exhaustive(opts(2, 0), |driver| {
            let stm = check_stm(alg);
            let q = TQueue::new(&stm, 4);
            let consumed = AtomicI64::new(0);
            let got_none = AtomicI64::new(0);
            let shared = (&stm, &q, &consumed, &got_none);
            type Shared<'a> = (&'a Stm, &'a TQueue, &'a AtomicI64, &'a AtomicI64);
            // Producer: enqueue 1 then 2 (capacity 4: never full).
            let producer = |_tid: usize, (stm, q, _, _): &Shared<'_>| {
                for item in 1..=2i64 {
                    let ok = stm.atomic(|tx| q.enqueue(tx, item));
                    assert!(ok, "queue of capacity 4 can never be full here");
                }
            };
            // Consumer: exactly 3 dequeue attempts, counting outcomes.
            let consumer = |_tid: usize, (stm, q, consumed, got_none): &Shared<'_>| {
                for _ in 0..3 {
                    match stm.atomic(|tx| q.dequeue(tx)) {
                        Some(v) => {
                            consumed.fetch_add(v, Ordering::SeqCst);
                        }
                        None => {
                            got_none.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            };
            let out = run_threads(&shared, &[&producer, &consumer], driver, STEP_CAP);
            if out.capped {
                return Err("step cap exceeded".into());
            }
            // Conservation: everything produced is either consumed or
            // still queued, in FIFO order.
            let mut remaining = Vec::new();
            while let Some(v) = stm.atomic(|tx| q.dequeue(tx)) {
                remaining.push(v);
            }
            let consumed_sum = consumed.load(Ordering::SeqCst);
            let total: i64 = consumed_sum + remaining.iter().sum::<i64>();
            if total != 3 {
                return Err(format!(
                    "{alg}: items lost or duplicated: consumed {consumed_sum}, \
                     left {remaining:?}"
                ));
            }
            // FIFO: whatever remains must be a suffix of [1, 2].
            if !([[].as_slice(), &[2], &[1, 2]].contains(&remaining.as_slice())) {
                return Err(format!("{alg}: FIFO order violated: left {remaining:?}"));
            }
            q.verify(&stm).map_err(|e| format!("{alg}: {e}"))
        });
        assert!(
            explored > 5,
            "{alg}: expected real branching, got {explored}"
        );
    }
}

#[test]
fn queue_three_threads_bounded_exploration() {
    // 2 producers + 1 consumer at 3 threads: the tree is much larger, so
    // bound executions; the preemption-0/1 prefix still covers every
    // thread ordering.
    for alg in [Algorithm::SNOrec, Algorithm::STl2] {
        explore_exhaustive(opts(1, 400), |driver| {
            let stm = check_stm(alg);
            let q = TQueue::new(&stm, 4);
            let consumed = AtomicI64::new(0);
            let shared = (&stm, &q, &consumed);
            type Shared<'a> = (&'a Stm, &'a TQueue, &'a AtomicI64);
            let p0 = |_tid: usize, (stm, q, _): &Shared<'_>| {
                assert!(stm.atomic(|tx| q.enqueue(tx, 10)));
            };
            let p1 = |_tid: usize, (stm, q, _): &Shared<'_>| {
                assert!(stm.atomic(|tx| q.enqueue(tx, 20)));
            };
            let consumer = |_tid: usize, (stm, q, consumed): &Shared<'_>| {
                for _ in 0..2 {
                    if let Some(v) = stm.atomic(|tx| q.dequeue(tx)) {
                        consumed.fetch_add(v, Ordering::SeqCst);
                    }
                }
            };
            let out = run_threads(&shared, &[&p0, &p1, &consumer], driver, STEP_CAP);
            if out.capped {
                return Err("step cap exceeded".into());
            }
            let mut left = 0i64;
            while let Some(v) = stm.atomic(|tx| q.dequeue(tx)) {
                left += v;
            }
            if consumed.load(Ordering::SeqCst) + left != 30 {
                return Err(format!(
                    "{alg}: conservation broken: consumed {}, left {left}",
                    consumed.load(Ordering::SeqCst)
                ));
            }
            q.verify(&stm).map_err(|e| format!("{alg}: {e}"))
        });
    }
}

#[test]
fn tmap_overlapping_inserts_all_schedules() {
    // Two threads race on the same key plus a private key each; the
    // final map must equal one of the serial outcomes and the tree
    // structure must verify.
    for alg in [Algorithm::SNOrec, Algorithm::STl2] {
        let explored = explore_exhaustive(opts(2, 0), |driver| {
            let stm = check_stm(alg);
            let m = TMap::new(&stm);
            let shared = (&stm, &m);
            type Shared<'a> = (&'a Stm, &'a TMap);
            let t0 = |_tid: usize, (stm, m): &Shared<'_>| {
                stm.atomic(|tx| m.insert(stm, tx, 1, 10));
                stm.atomic(|tx| m.insert(stm, tx, 2, 20));
            };
            let t1 = |_tid: usize, (stm, m): &Shared<'_>| {
                stm.atomic(|tx| m.insert(stm, tx, 1, 11));
            };
            let out = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
            if out.capped {
                return Err("step cap exceeded".into());
            }
            m.verify(&stm).map_err(|e| format!("{alg}: {e}"))?;
            let mut entries = Vec::new();
            m.for_each_now(&stm, |k, v| entries.push((k, v)));
            entries.sort_unstable();
            // Serial outcomes: key 1 holds whichever insert ran last
            // (insert overwrites), key 2 always holds 20.
            let ok = entries == [(1, 10), (2, 20)] || entries == [(1, 11), (2, 20)];
            if !ok {
                return Err(format!("{alg}: map {entries:?} matches no serial order"));
            }
            Ok(())
        });
        assert!(
            explored > 5,
            "{alg}: expected real branching, got {explored}"
        );
    }
}

#[test]
fn tmap_insert_vs_remove_all_schedules() {
    for alg in [Algorithm::SNOrec, Algorithm::STl2] {
        explore_exhaustive(opts(2, 0), |driver| {
            let stm = check_stm(alg);
            let m = TMap::new(&stm);
            // Pre-populate outside the explored window.
            stm.atomic(|tx| m.insert(&stm, tx, 5, 50));
            let shared = (&stm, &m);
            type Shared<'a> = (&'a Stm, &'a TMap);
            let t0 = |_tid: usize, (stm, m): &Shared<'_>| {
                stm.atomic(|tx| m.insert(stm, tx, 3, 30));
            };
            let t1 = |_tid: usize, (stm, m): &Shared<'_>| {
                let removed = stm.atomic(|tx| m.remove(tx, 5));
                assert_eq!(removed, Some(50), "pre-inserted key must be removable");
            };
            let out = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
            if out.capped {
                return Err("step cap exceeded".into());
            }
            m.verify(&stm).map_err(|e| format!("{alg}: {e}"))?;
            let mut entries = Vec::new();
            m.for_each_now(&stm, |k, v| entries.push((k, v)));
            entries.sort_unstable();
            if entries != [(3, 30)] {
                return Err(format!("{alg}: map {entries:?}, expected [(3, 30)]"));
            }
            Ok(())
        });
    }
}
