//! Gate for the sharded commit clock (`StmConfig::clock_shards > 1`).
//!
//! Every scenario here forces 4 clock shards with padded allocation, so
//! separately allocated cells live on distinct cache lines and therefore
//! distinct shards — the begin-time double-collect, per-shard read-set
//! revalidation, and multi-shard commit acquisition all run for real.
//! Exhaustive bounded-preemption DFS covers the targeted scenarios; the
//! cross-backend differential fuzzer covers random programs on all four
//! algorithms (the TL2 family ignores the knob — the runs double as
//! proof that it stays inert there). Tier-1 additionally re-runs the
//! whole check suite with `SEMTM_CLOCK_SHARDS=4`, which routes every
//! *other* scenario in this crate through the sharded clock too.

use semtm_check::checker::check_history;
use semtm_check::fuzz::{check_stm_sharded, iterations, run_differential_sharded};
use semtm_check::history::{atomic_recorded, Recorder};
use semtm_check::schedule::{explore_exhaustive, ExploreOptions};
use semtm_check::vthread::run_threads;
use semtm_core::ops::CmpOp;
use semtm_core::{Algorithm, Stm};

const STEP_CAP: usize = 20_000;
const SHARDS: usize = 4;

fn opts(max_preemptions: u32) -> ExploreOptions {
    ExploreOptions {
        max_preemptions,
        max_executions: 0,
        step_cap: STEP_CAP,
    }
}

type Shared<'a> = (&'a Stm, &'a Recorder);

#[test]
fn exhaustive_cross_shard_increments_never_lose_updates() {
    // Both transactions write two cells on different shards, so every
    // commit exercises sorted multi-shard acquisition and release.
    for alg in Algorithm::ALL {
        let explored = explore_exhaustive(opts(2), |driver| {
            let stm = check_stm_sharded(alg, SHARDS);
            let x = stm.alloc_cell(0i64);
            let y = stm.alloc_cell(0i64);
            let body = |_tid: usize, stm: &Stm| {
                stm.atomic(|tx| {
                    tx.inc(x, 1)?;
                    tx.inc(y, 1)
                });
            };
            let out = run_threads(&stm, &[&body, &body], driver, STEP_CAP);
            if out.capped {
                return Err("step cap exceeded".into());
            }
            let (vx, vy) = (stm.read_now(x), stm.read_now(y));
            if vx == 2 && vy == 2 {
                Ok(())
            } else {
                Err(format!("{alg}: lost update, x = {vx}, y = {vy}"))
            }
        });
        assert!(explored > 1, "{alg}: expected multiple schedules");
    }
}

#[test]
fn exhaustive_cross_shard_histories_are_opaque() {
    // T0 reads x (shard A) and publishes to y (shard B); T1 overwrites
    // x. A reader whose snapshot straddles shards must never commit an
    // inconsistent pair — the history checker verifies every schedule,
    // aborted attempts included.
    for alg in Algorithm::ALL {
        explore_exhaustive(opts(2), |driver| {
            let stm = check_stm_sharded(alg, SHARDS);
            let x = stm.alloc_cell(1i64);
            let y = stm.alloc_cell(0i64);
            let rec = Recorder::new();
            let shared = (&stm, &rec);
            let t0 = |tid: usize, (stm, rec): &Shared<'_>| {
                atomic_recorded(stm, rec, tid, |tx| {
                    let v = tx.read(x)?;
                    tx.write(y, v + 1)
                });
            };
            let t1 = |tid: usize, (stm, rec): &Shared<'_>| {
                atomic_recorded(stm, rec, tid, |tx| tx.write(x, 7));
            };
            let out = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
            if out.capped {
                return Err("step cap exceeded".into());
            }
            check_history(
                &rec.attempts(),
                &[(x, 1), (y, 0)],
                &[(x, stm.read_now(x)), (y, stm.read_now(y))],
            )
            .map_err(|e| format!("{alg}: {e}"))
        });
    }
}

#[test]
fn exhaustive_cross_shard_semantic_revalidation_is_sound() {
    // The sharded twin of the S-NOrec revalidation scenario: the `cmp`
    // on x and the read of y cover *different* shards, so T0's
    // validation must re-check x whenever x's shard moved — a bug that
    // only rechecks the shard the current read touches would let T0
    // observe `x > 0` and `y == 1` together, which no serial order
    // explains.
    for alg in [Algorithm::NOrec, Algorithm::SNOrec] {
        explore_exhaustive(opts(3), |driver| {
            let stm = check_stm_sharded(alg, SHARDS);
            let x = stm.alloc_cell(5i64);
            let y = stm.alloc_cell(0i64);
            let out_c = stm.alloc_cell(0i64);
            let rec = Recorder::new();
            let shared = (&stm, &rec);
            let t0 = |tid: usize, (stm, rec): &Shared<'_>| {
                atomic_recorded(stm, rec, tid, |tx| {
                    if tx.cmp(x, CmpOp::Gt, 0)? {
                        tx.write(out_c, 1)?;
                    }
                    tx.read(y).map(|_| ())
                });
            };
            let t1 = |tid: usize, (stm, rec): &Shared<'_>| {
                atomic_recorded(stm, rec, tid, |tx| {
                    tx.write(x, -5)?;
                    tx.write(y, 1)
                });
            };
            let o = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
            if o.capped {
                return Err("step cap exceeded".into());
            }
            check_history(
                &rec.attempts(),
                &[(x, 5), (y, 0), (out_c, 0)],
                &[
                    (x, stm.read_now(x)),
                    (y, stm.read_now(y)),
                    (out_c, stm.read_now(out_c)),
                ],
            )
            .map_err(|e| format!("{alg}: {e}"))
        });
    }
}

#[test]
fn exhaustive_opposed_writers_do_not_deadlock_or_corrupt() {
    // T0 transfers x → y while T1 transfers y → x: the write sets cover
    // the same two shards, so commit-time acquisition contention (and
    // the timeout/rollback path) gets explored. Total is conserved in
    // every schedule.
    for alg in [Algorithm::NOrec, Algorithm::SNOrec] {
        explore_exhaustive(opts(2), |driver| {
            let stm = check_stm_sharded(alg, SHARDS);
            let x = stm.alloc_cell(10i64);
            let y = stm.alloc_cell(10i64);
            let t0 = |_tid: usize, stm: &&Stm| {
                stm.atomic(|tx| {
                    tx.inc(x, -3)?;
                    tx.inc(y, 3)
                });
            };
            let t1 = |_tid: usize, stm: &&Stm| {
                stm.atomic(|tx| {
                    tx.inc(y, -7)?;
                    tx.inc(x, 7)
                });
            };
            let out = run_threads(&&stm, &[&t0, &t1], driver, STEP_CAP);
            if out.capped {
                return Err("step cap exceeded".into());
            }
            let total = stm.read_now(x) + stm.read_now(y);
            if total == 20 {
                Ok(())
            } else {
                Err(format!("{alg}: total {total} != 20"))
            }
        });
    }
}

#[test]
fn differential_fuzz_all_backends_at_four_shards() {
    // Same harness as tests/fuzz_differential.rs, but pinned to 4 clock
    // shards with line-strided slots: random programs on all four
    // algorithms must match the serial oracle and pass the history
    // checker. The budget is smaller than the global-clock run since
    // tier-1 also re-runs that whole file under SEMTM_CLOCK_SHARDS=4.
    run_differential_sharded(iterations(300), 0x5eed_cafe_f00d_0002, SHARDS);
}
