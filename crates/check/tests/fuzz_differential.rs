//! Cross-backend differential fuzzing: random transaction programs run
//! on all four algorithms under seeded random schedules must land in
//! the serial-oracle outcome set and pass the opacity/history checker.
//!
//! The default budget (1000 programs × 4 algorithms) is tuned for the
//! tier-1 wall clock; override with `SEMTM_CHECK_ITERS=<n>` for longer
//! soak runs. Failures panic with the program seed, schedule seed, and
//! a minimized reproducer program.

use semtm_check::fuzz::{iterations, run_differential};

#[test]
fn differential_fuzz_all_backends_match_serial_oracle() {
    // Fixed base seed: the run is fully deterministic, so a failure in
    // CI reproduces locally with no extra information.
    run_differential(iterations(1000), 0x5eed_cafe_f00d_0001);
}
