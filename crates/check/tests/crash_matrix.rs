//! Kill-at-any-schedule-point crash-recovery matrix: every engine ×
//! every crash kernel, swept over random schedules where each execution
//! contributes the crash image of *all* of its schedule points (see
//! `semtm_check::crash`). Asserts the two durability properties — no
//! acked commit is ever lost, no recovered state is ever inconsistent —
//! and writes a summary CSV under `results/check/` for CI upload.
//!
//! Bounded for tier-1 wall clock; raise `SEMTM_CRASH_SEEDS=<n>` for
//! soak runs.

use semtm_check::crash::{sweep, CrashConfig, CrashKernel};
use semtm_core::Algorithm;
use std::fmt::Write as _;

/// Schedule executions per (engine, kernel) cell.
fn executions() -> usize {
    std::env::var("SEMTM_CRASH_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

#[test]
fn crash_matrix_no_lost_acked_no_partial_tx() {
    // The four algorithms at a single clock shard, plus S-NOrec on the
    // sharded commit clock (the ScNorec engine) — the one engine whose
    // commit path differs structurally from its single-shard form.
    let engines: [(Algorithm, usize); 5] = [
        (Algorithm::NOrec, 1),
        (Algorithm::SNOrec, 1),
        (Algorithm::Tl2, 1),
        (Algorithm::STl2, 1),
        (Algorithm::SNOrec, 4),
    ];
    let kernels = [CrashKernel::Bank, CrashKernel::Slots];

    let mut csv = String::from(
        "engine,clock_shards,kernel,executions,kill_points,recoveries,\
         acked_commits,logged_commits,lost_acked,inconsistent\n",
    );
    let mut failures = Vec::new();
    for (alg, shards) in engines {
        for kernel in kernels {
            let mut cfg = CrashConfig::new(alg, kernel);
            cfg.clock_shards = shards;
            cfg.executions = executions();
            // Decorrelate the schedule walks across matrix cells.
            cfg.base_seed ^= (shards as u64) << 32 | (kernel as u64) << 8 | alg as u64;
            let report = sweep(&cfg)
                .unwrap_or_else(|e| panic!("{alg}/{shards} {} sweep failed: {e}", kernel.name()));
            writeln!(
                csv,
                "{alg},{shards},{},{},{},{},{},{},{},{}",
                kernel.name(),
                report.executions,
                report.kill_points,
                report.recoveries,
                report.acked_commits,
                report.logged_commits,
                report.lost_acked,
                report.inconsistent,
            )
            .unwrap();
            // Every cell must actually exercise the machinery...
            if report.kill_points == 0 || report.acked_commits == 0 {
                failures.push(format!(
                    "{alg}/{shards} {}: vacuous sweep {report:?}",
                    kernel.name()
                ));
            }
            // ...and both crash properties must hold at every kill point.
            if report.lost_acked != 0 || report.inconsistent != 0 {
                failures.push(format!(
                    "{alg}/{shards} {}: {} lost acked commit(s), {} inconsistent \
                     recovered state(s) — {report:?}",
                    kernel.name(),
                    report.lost_acked,
                    report.inconsistent
                ));
            }
        }
    }

    // Summary artifact for CI (results/check/ is gitignored).
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let dir = std::path::Path::new(root).join("results/check");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join("crash_matrix.csv"), &csv);
    }

    assert!(
        failures.is_empty(),
        "crash matrix violations:\n{}\nfull matrix:\n{csv}",
        failures.join("\n")
    );
}
