//! Schedule exploration over the checked-in IR kernels: the interpreter
//! runs a kernel inside the vthread harness while a rival transaction
//! races it, and every bounded schedule must land in a serializable
//! outcome — for the original kernel AND for the `tm_mark`/`tm_widen`
//! output, whose promoted `_ITM_S1R`/`_ITM_S2R` barriers defer the check
//! to commit time and must revalidate correctly under preemption.

use semtm_check::fuzz::check_stm;
use semtm_check::schedule::{explore_exhaustive, ExploreOptions};
use semtm_check::vthread::run_threads;
use semtm_core::{Algorithm, Stm};
use semtm_ir::{programs, run_tm_passes, Function, Interp};
use std::sync::atomic::{AtomicI64, Ordering};

const STEP_CAP: usize = 20_000;

fn opts() -> ExploreOptions {
    ExploreOptions {
        max_preemptions: 2,
        max_executions: 2_000,
        step_cap: STEP_CAP,
    }
}

/// The kernel as checked in, and after the full pass pipeline (which
/// promotes its guard to a semantic builtin — `tm_widen` proves the
/// range-shifted compare in `range_gate`, `tm_mark` the cross-block
/// compare in `cross_block_guard`).
fn variants(f: Function) -> [(&'static str, Function); 2] {
    let mut passed = f.clone();
    run_tm_passes(&mut passed);
    [("original", f), ("passed", passed)]
}

/// `range_gate(tokens, grants)` admits when `*tokens > 50` (written as
/// the widened relation `*tokens <= 100 && *tokens + 27 > 77`) and then
/// bumps `grants`. A rival transaction drains the bucket from 60 to 40
/// across the threshold, so the gate's decision is only consistent if
/// its (possibly TM_CMP-promoted) guard revalidates: every schedule
/// must serialize as gate-then-drain (grant) or drain-then-gate (no
/// grant), never a zombie mix.
#[test]
fn range_gate_serializes_against_a_bucket_drain_on_every_schedule() {
    for alg in Algorithm::ALL {
        for (name, f) in variants(programs::range_gate()) {
            let explored = explore_exhaustive(opts(), |driver| {
                let stm = check_stm(alg);
                let tokens = stm.alloc_cell(60i64);
                let grants = stm.alloc_cell(0i64);
                let ret = AtomicI64::new(-1);
                let shared = (&stm, &ret);
                type Shared<'a> = (&'a Stm, &'a AtomicI64);
                let gate = |_tid: usize, (stm, ret): &Shared<'_>| {
                    let r = Interp::new(stm)
                        .execute(&f, &[tokens.index() as i64, grants.index() as i64])
                        .expect("kernel executes")
                        .expect("kernel returns a value");
                    ret.store(r, Ordering::Relaxed);
                };
                let drain = |_tid: usize, (stm, _): &Shared<'_>| {
                    stm.atomic(|tx| tx.inc(tokens, -20));
                };
                let out = run_threads(&shared, &[&gate, &drain], driver, STEP_CAP);
                if out.capped {
                    return Err("step cap exceeded".into());
                }
                let (t, g, r) = (
                    stm.read_now(tokens),
                    stm.read_now(grants),
                    ret.load(Ordering::Relaxed),
                );
                if t != 40 {
                    return Err(format!("{alg}/{name}: tokens = {t}, drain lost"));
                }
                match (r, g) {
                    (1, 1) | (0, 0) => Ok(()),
                    _ => Err(format!(
                        "{alg}/{name}: non-serializable outcome ret={r} grants={g}"
                    )),
                }
            });
            assert!(explored > 10, "{alg}/{name}: only {explored} schedules");
        }
    }
}

/// Two racing `cross_block_guard(lock, count)` calls: mutual exclusion
/// must hold on every schedule — exactly one caller acquires, the
/// counter is bumped exactly once — whether the guard is the original
/// load+cmp pair or the promoted `_ITM_S1R` value-compare.
#[test]
fn cross_block_guard_is_mutually_exclusive_on_every_schedule() {
    for alg in Algorithm::ALL {
        for (name, f) in variants(programs::cross_block_guard()) {
            let explored = explore_exhaustive(opts(), |driver| {
                let stm = check_stm(alg);
                let lock = stm.alloc_cell(0i64);
                let count = stm.alloc_cell(0i64);
                let rets = [AtomicI64::new(-1), AtomicI64::new(-1)];
                let shared = (&stm, &rets);
                type Shared<'a> = (&'a Stm, &'a [AtomicI64; 2]);
                let body = |tid: usize, (stm, rets): &Shared<'_>| {
                    let r = Interp::new(stm)
                        .execute(&f, &[lock.index() as i64, count.index() as i64])
                        .expect("kernel executes")
                        .expect("kernel returns a value");
                    rets[tid].store(r, Ordering::Relaxed);
                };
                let out = run_threads(&shared, &[&body, &body], driver, STEP_CAP);
                if out.capped {
                    return Err("step cap exceeded".into());
                }
                let (l, c) = (stm.read_now(lock), stm.read_now(count));
                let acquired = rets[0].load(Ordering::Relaxed) + rets[1].load(Ordering::Relaxed);
                if l == 1 && c == 1 && acquired == 1 {
                    Ok(())
                } else {
                    Err(format!(
                        "{alg}/{name}: mutual exclusion broken: lock={l} \
                         count={c} acquisitions={acquired}"
                    ))
                }
            });
            assert!(explored > 10, "{alg}/{name}: only {explored} schedules");
        }
    }
}
