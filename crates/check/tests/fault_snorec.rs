//! Regression test: the harness catches a deliberately reintroduced
//! S-NOrec bug (skipping the per-entry semantic revalidation during
//! `Validate`, i.e. after a snapshot extension).
//!
//! Faults are process-global, so this file holds exactly one test and
//! lives in its own integration-test binary (own process). The same
//! scenario runs *unfaulted* across all schedules in
//! `tests/scheduler_smoke.rs`, proving the panic here is the armed
//! fault and nothing else.

use semtm_check::scenario;
use semtm_check::schedule::{explore_exhaustive, ExploreOptions};
use semtm_core::fault;

#[test]
#[should_panic(expected = "no real-time-consistent serial order")]
fn skipped_snorec_revalidation_is_caught_by_the_checker() {
    fault::arm(fault::SNOREC_SKIP_REVALIDATION);
    explore_exhaustive(
        ExploreOptions {
            max_preemptions: 3,
            max_executions: 0,
            step_cap: 20_000,
        },
        |driver| scenario::snorec_revalidation(driver),
    );
}
