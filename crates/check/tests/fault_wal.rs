//! Fault injection for the commit log's I/O failure policy (DESIGN.md
//! §9): an append/fsync error poisons the log, the *first* committer
//! that already applied its writes fail-stops (panic — its heap state
//! is visible but not durable, and retrying would double-apply), and
//! every *later* transaction aborts cleanly with
//! [`AbortReason::Durability`] before touching the heap.
//!
//! Faults are process-global, so this file holds exactly one test and
//! lives in its own integration-test binary (own process).

use semtm_core::fault;
use semtm_core::wal::{CommitLog, DurabilityMode, SimStorage, WalError};
use semtm_core::{AbortReason, Algorithm, Stm, StmConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn durable_stm(alg: Algorithm) -> Stm {
    let (sim, _handle) = SimStorage::new();
    let cfg = StmConfig::new(alg)
        .heap_words(64)
        .orec_count(16)
        .durability(DurabilityMode::Sync);
    Stm::with_wal(cfg, Box::new(sim))
}

#[test]
fn wal_io_errors_poison_the_log_and_fail_stop() {
    // Panics are expected below; keep the test output quiet.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    // --- Append I/O error: first committer fail-stops, log poisons. ---
    fault::arm(fault::WAL_APPEND_IO_ERROR);
    let stm = durable_stm(Algorithm::SNOrec);
    let cell = stm.alloc_cell(0i64);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        stm.atomic(|tx| tx.write(cell, 42));
    }));
    let msg = *outcome
        .expect_err("a commit that cannot be made durable must fail-stop")
        .downcast::<String>()
        .expect("panic payload");
    assert!(
        msg.contains("cannot be made durable"),
        "unexpected panic: {msg}"
    );
    // The write-back had already happened (the failure is post-apply)...
    assert_eq!(stm.read_now(cell), 42);
    // ...and the log is now poisoned for good.
    assert!(stm.wal().unwrap().is_poisoned());

    // Later transactions abort *cleanly*: the durability abort fires
    // before any heap write, even with the fault since disarmed.
    fault::arm(0);
    let res = stm.try_atomic(|tx| tx.write(cell, 99));
    let abort = res.expect_err("poisoned log must refuse new commits");
    assert_eq!(abort.reason, AbortReason::Durability);
    assert_eq!(stm.read_now(cell), 42, "aborted tx must not touch the heap");
    // Read-only transactions never reach the log and still succeed.
    let v = stm
        .try_atomic(|tx| tx.read(cell))
        .expect("read-only tx needs no durability");
    assert_eq!(v, 42);

    // --- Fsync I/O error: same fail-stop policy, bytes written but not
    // durable. ---
    fault::arm(fault::WAL_FSYNC_IO_ERROR);
    let (sim, handle) = SimStorage::new();
    let cfg = StmConfig::new(Algorithm::Tl2)
        .heap_words(64)
        .orec_count(16)
        .durability(DurabilityMode::Sync);
    let stm2 = Stm::with_wal(cfg, Box::new(sim));
    let cell2 = stm2.alloc_cell(0i64);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        stm2.atomic(|tx| tx.write(cell2, 7));
    }));
    assert!(outcome.is_err(), "unsynced commit must fail-stop");
    assert!(stm2.wal().unwrap().is_poisoned());
    let (written, durable) = handle.watermarks();
    assert!(written > 0, "append itself succeeded");
    assert_eq!(durable, 0, "fsync failed, nothing is durable");
    fault::arm(0);

    // --- Direct CommitLog surface: flush_step reports the error, then
    // every later call fails fast with the original root cause. ---
    fault::arm(fault::WAL_APPEND_IO_ERROR);
    let (sim, _handle) = SimStorage::new();
    let log = CommitLog::new(Box::new(sim), DurabilityMode::Manual);
    let t = log.append(&[]).expect("buffering an append cannot fail");
    assert_eq!(t.seq(), 1);
    match log.flush_step() {
        Err(WalError::Append(_)) => {}
        other => panic!("expected an append I/O error, got {other:?}"),
    }
    fault::arm(0);
    assert!(matches!(log.flush_step(), Err(WalError::Append(_))));
    assert!(matches!(log.append(&[]), Err(WalError::Append(_))));

    std::panic::set_hook(prev_hook);
}
