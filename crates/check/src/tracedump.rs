//! Flight-recorder dumps for failing schedules.
//!
//! When the differential fuzzer or a fault-injection scenario catches a
//! violation, the minimized interleaving is replayed once more on an
//! [`TelemetryLevel::Spans`](semtm_core::TelemetryLevel::Spans)-enabled
//! runtime and the recorded spans are written out as Chrome trace-event
//! JSON under `results/check/` at the workspace root. The panic/error
//! message names the file, so a red CI run ships a timeline of the
//! offending schedule (every attempt, its phases, and which
//! address/transaction each abort was attributed to) as part of the
//! uploaded `results/` artifact.

use std::path::PathBuf;

/// Best-effort write of a Chrome trace-event document to
/// `results/check/<name>.json` (workspace root, independent of the test
/// runner's working directory). Returns the path on success; IO failures
/// yield `None` rather than masking the original test failure.
pub fn dump_trace(name: &str, json: &str) -> Option<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/check");
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json).ok()?;
    Some(path)
}

/// Render `dump_trace`'s outcome for inclusion in a failure message.
pub fn dump_note(name: &str, json: &str) -> String {
    match dump_trace(name, json) {
        Some(path) => format!("flight-recorder trace: {}", path.display()),
        None => "flight-recorder trace could not be written".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_writes_under_results_check() {
        let path = dump_trace("selftest", "{\"traceEvents\":[]}").expect("writable");
        assert!(path.ends_with("selftest.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"traceEvents\":[]}");
        std::fs::remove_file(&path).ok();
    }
}
