//! # semtm-check — deterministic schedule exploration for the semantic STM
//!
//! A hand-rolled, zero-dependency loom/shuttle-style concurrency harness
//! for the `semtm-core` algorithms (NOrec, S-NOrec, TL2, S-TL2):
//!
//! * [`vthread`] — N transaction bodies as coroutines-on-real-threads
//!   with exactly one runnable at a time, driven by a schedule
//!   [`Driver`](schedule::Driver);
//! * [`schedule`] — exhaustive bounded-preemption DFS
//!   ([`DfsDriver`](schedule::DfsDriver)) and seeded, replayable random
//!   walks ([`RandomDriver`](schedule::RandomDriver));
//! * [`history`] — a recorder logging every `begin`/`read`/`cmp`/`inc`/
//!   `write`/`commit`/`abort` with global sequence stamps;
//! * [`checker`] — final-state serializability and zombie-freedom over
//!   recorded histories;
//! * [`program`] + [`fuzz`] + [`shrink`] — the cross-backend
//!   differential fuzzer: random transaction programs, executed on all
//!   four algorithms under random schedules, compared against a serial
//!   oracle, with failing programs minimized before reporting.
//!
//! The instrumentation side lives in `semtm-core` behind the `shuttle`
//! feature (`sched::point()` / `sched::spin()`), which this crate always
//! enables; normal builds of the core compile the points away.
//!
//! ## Quick start
//!
//! ```
//! use semtm_check::schedule::{explore_exhaustive, ExploreOptions};
//! use semtm_check::vthread::run_threads;
//! use semtm_check::fuzz::check_stm;
//! use semtm_core::Algorithm;
//!
//! // Explore every schedule (≤2 preemptions) of two racing increments.
//! let explored = explore_exhaustive(
//!     ExploreOptions { max_preemptions: 2, ..ExploreOptions::default() },
//!     |driver| {
//!         let stm = check_stm(Algorithm::SNOrec);
//!         let x = stm.alloc_cell(0i64);
//!         let body = |_tid: usize, stm: &semtm_core::Stm| {
//!             stm.atomic(|tx| tx.inc(x, 1));
//!         };
//!         run_threads(&stm, &[&body, &body], driver, 10_000);
//!         if stm.read_now(x) == 2 { Ok(()) } else { Err("lost update".into()) }
//!     },
//! );
//! assert!(explored > 1);
//! ```
//!
//! Failing explorations panic with a replay seed (random mode) or the
//! decision schedule (exhaustive mode); see DESIGN.md §"Testing
//! strategy" for how to replay them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod crash;
pub mod fuzz;
pub mod history;
pub mod program;
pub mod scenario;
pub mod schedule;
pub mod shrink;
pub mod tracedump;
pub mod vthread;
