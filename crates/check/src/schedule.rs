//! Schedule drivers: who runs next at each coordinator decision.
//!
//! Two explorers are provided, both CHESS-style over the same decision
//! interface:
//!
//! * [`DfsDriver`] — exhaustive depth-first enumeration of schedules
//!   with a **bounded number of preemptions** (a context switch at a
//!   point where the running thread could have continued). Completion
//!   switches and spin switches are free, which keeps the tree finite
//!   and focuses the budget on the switches that actually expose races.
//! * [`RandomDriver`] — a seeded random walk (SplitMix64), fully
//!   replayable from the printed seed.

use semtm_core::util::SplitMix64;

/// One scheduling decision's context, handed to the driver.
#[derive(Debug)]
pub struct Decision<'a> {
    /// The thread that ran last, if it is still runnable.
    pub current: Option<usize>,
    /// Whether `current` parked at a spin point (futile wait): it must
    /// not be rescheduled while another thread is runnable, and
    /// switching away from it is free.
    pub spin: bool,
    /// Runnable thread ids, ascending. Never empty.
    pub alive: &'a [usize],
}

/// A schedule driver: picks the next thread to resume.
pub trait Driver {
    /// Return the id of the thread to run; must be in `d.alive`.
    fn choose(&mut self, d: Decision<'_>) -> usize;
}

/// Candidate threads for a decision, and whether picking any candidate
/// other than the first costs a preemption.
///
/// * No current thread (previous one finished): all alive, free.
/// * Current spinning and others runnable: the others, free (the
///   spinner is excluded — rescheduling it cannot make progress).
/// * Current spinning alone: only it (the schedule may still be a
///   livelock; the step cap handles that).
/// * Otherwise: current first then the others; choosing an *other*
///   costs one preemption.
fn candidates(d: &Decision<'_>) -> (Vec<usize>, bool) {
    match d.current {
        None => (d.alive.to_vec(), false),
        Some(c) if d.spin => {
            let others: Vec<usize> = d.alive.iter().copied().filter(|&i| i != c).collect();
            if others.is_empty() {
                (vec![c], false)
            } else {
                (others, false)
            }
        }
        Some(c) => {
            let mut cands = vec![c];
            cands.extend(d.alive.iter().copied().filter(|&i| i != c));
            let costs = cands.len() > 1;
            (cands, costs)
        }
    }
}

/// A node of the DFS tree: one decision already taken this execution.
struct Node {
    cands: Vec<usize>,
    /// Whether non-first candidates cost a preemption here.
    costs: bool,
    chosen_idx: usize,
    /// Preemptions spent strictly before this decision.
    preempts_before: u32,
}

/// Exhaustive bounded-preemption DFS over schedules.
///
/// Use via [`explore_exhaustive`]: run an execution with the driver,
/// then call [`DfsDriver::advance`]; repeat until it returns `false`.
pub struct DfsDriver {
    max_preemptions: u32,
    /// Choice indices to replay for the prefix of the current execution.
    prefix: Vec<usize>,
    /// Decisions taken so far in the current execution.
    trace: Vec<Node>,
    preemptions: u32,
}

impl DfsDriver {
    /// A DFS exploring every schedule with at most `max_preemptions`
    /// forced context switches.
    pub fn new(max_preemptions: u32) -> DfsDriver {
        DfsDriver {
            max_preemptions,
            prefix: Vec::new(),
            trace: Vec::new(),
            preemptions: 0,
        }
    }

    /// Reset per-execution state and move to the next unexplored branch.
    /// Returns `false` when the whole bounded tree has been explored.
    pub fn advance(&mut self) -> bool {
        while let Some(node) = self.trace.last() {
            let next = node.chosen_idx + 1;
            let affordable = !node.costs || node.preempts_before < self.max_preemptions;
            if next < node.cands.len() && affordable {
                self.prefix = self
                    .trace
                    .iter()
                    .map(|n| n.chosen_idx)
                    .take(self.trace.len() - 1)
                    .collect();
                self.prefix.push(next);
                self.trace.clear();
                self.preemptions = 0;
                return true;
            }
            self.trace.pop();
        }
        false
    }

    /// The schedule of the current execution, as thread ids in decision
    /// order (for failure reports).
    pub fn schedule(&self) -> Vec<usize> {
        self.trace.iter().map(|n| n.cands[n.chosen_idx]).collect()
    }
}

impl Driver for DfsDriver {
    fn choose(&mut self, d: Decision<'_>) -> usize {
        let (cands, costs) = candidates(&d);
        let depth = self.trace.len();
        let idx = if depth < self.prefix.len() {
            // Replaying the prefix chosen by `advance`. The tree below a
            // fixed prefix is deterministic, so the candidate list must
            // match what we saw last time.
            self.prefix[depth].min(cands.len() - 1)
        } else {
            0
        };
        let chosen = cands[idx];
        let costed = costs && idx > 0;
        self.trace.push(Node {
            cands,
            costs,
            chosen_idx: idx,
            preempts_before: self.preemptions,
        });
        if costed {
            self.preemptions += 1;
        }
        chosen
    }
}

/// Seeded random-walk driver: switches away from a runnable current
/// thread with probability `switch_pct`%, otherwise continues it.
pub struct RandomDriver {
    rng: SplitMix64,
    switch_pct: u32,
}

impl RandomDriver {
    /// A random walk fully determined by `seed`.
    pub fn new(seed: u64, switch_pct: u32) -> RandomDriver {
        RandomDriver {
            rng: SplitMix64::new(seed),
            switch_pct,
        }
    }
}

impl Driver for RandomDriver {
    fn choose(&mut self, d: Decision<'_>) -> usize {
        let (cands, costs) = candidates(&d);
        if cands.len() == 1 {
            return cands[0];
        }
        if costs {
            if self.rng.chance(self.switch_pct) {
                cands[1 + self.rng.index(cands.len() - 1)]
            } else {
                cands[0]
            }
        } else {
            cands[self.rng.index(cands.len())]
        }
    }
}

/// Budgets for one exploration run.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Preemption bound for the exhaustive DFS.
    pub max_preemptions: u32,
    /// Hard cap on the number of executions (0 = unlimited).
    pub max_executions: usize,
    /// Per-execution scheduling-step cap (livelock backstop).
    pub step_cap: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_preemptions: 3,
            max_executions: 0,
            step_cap: 20_000,
        }
    }
}

/// Exhaustively explore schedules: call `execute` once per schedule with
/// the driver (pass it to [`crate::vthread::run_threads`]), until the
/// bounded tree is exhausted or a budget trips.
///
/// On `Err` from `execute`, panics with the failing execution index and
/// the schedule (thread ids in decision order) so the run is replayable.
/// Returns the number of executions explored.
pub fn explore_exhaustive(
    opts: ExploreOptions,
    mut execute: impl FnMut(&mut DfsDriver) -> Result<(), String>,
) -> usize {
    let mut driver = DfsDriver::new(opts.max_preemptions);
    let mut executions = 0usize;
    loop {
        executions += 1;
        if let Err(msg) = execute(&mut driver) {
            panic!(
                "schedule exploration failed at execution {executions} \
                 (schedule {:?}, {} preemptions): {msg}",
                driver.schedule(),
                driver.preemptions,
            );
        }
        if opts.max_executions != 0 && executions >= opts.max_executions {
            return executions;
        }
        if !driver.advance() {
            return executions;
        }
    }
}

/// Run `iterations` random-walk executions derived from `base_seed`.
/// Each execution gets an independent seed; a failure panics with that
/// seed so the exact walk can be replayed with [`RandomDriver::new`].
pub fn explore_random(
    base_seed: u64,
    iterations: usize,
    switch_pct: u32,
    mut execute: impl FnMut(&mut RandomDriver) -> Result<(), String>,
) -> usize {
    let mut seeder = SplitMix64::new(base_seed);
    for i in 0..iterations {
        let seed = seeder.next_u64();
        let mut driver = RandomDriver::new(seed, switch_pct);
        if let Err(msg) = execute(&mut driver) {
            panic!(
                "random schedule exploration failed at iteration {i} \
                 (replay seed {seed:#x}, switch_pct {switch_pct}): {msg}"
            );
        }
    }
    iterations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate executions on a fixed abstract program: each thread has
    /// `steps` points; collect all explored schedules.
    fn enumerate(threads: usize, steps: usize, max_preemptions: u32) -> Vec<Vec<usize>> {
        let mut schedules = Vec::new();
        let mut driver = DfsDriver::new(max_preemptions);
        loop {
            let mut remaining = vec![steps; threads];
            let mut current: Option<usize> = None;
            let mut order = Vec::new();
            loop {
                let alive: Vec<usize> = (0..threads).filter(|&i| remaining[i] > 0).collect();
                if alive.is_empty() {
                    break;
                }
                let c = driver.choose(Decision {
                    current,
                    spin: false,
                    alive: &alive,
                });
                order.push(c);
                remaining[c] -= 1;
                current = if remaining[c] > 0 { Some(c) } else { None };
            }
            schedules.push(order);
            if !driver.advance() {
                break;
            }
        }
        schedules
    }

    #[test]
    fn zero_preemptions_yields_thread_orderings_only() {
        // With no preemptions each thread runs to completion once
        // scheduled: exactly n! schedules.
        let s = enumerate(2, 3, 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(s[1], vec![1, 1, 1, 0, 0, 0]);
        assert_eq!(enumerate(3, 2, 0).len(), 6);
    }

    #[test]
    fn full_preemption_budget_covers_all_interleavings() {
        // 2 threads × 3 steps: C(6,3) = 20 interleavings; a budget of 5
        // (≥ max possible switches) must reach all of them.
        let s = enumerate(2, 3, 5);
        let unique: std::collections::HashSet<_> = s.iter().cloned().collect();
        assert_eq!(unique.len(), 20);
        assert_eq!(s.len(), 20, "no schedule explored twice");
    }

    #[test]
    fn bounded_preemptions_prune_monotonically() {
        let n0 = enumerate(2, 4, 0).len();
        let n1 = enumerate(2, 4, 1).len();
        let n2 = enumerate(2, 4, 2).len();
        let all = enumerate(2, 4, 8).len();
        assert!(n0 < n1 && n1 < n2 && n2 < all);
        assert_eq!(all, 70); // C(8,4)
    }

    #[test]
    fn spin_forces_a_switch() {
        let mut driver = DfsDriver::new(0);
        let c = driver.choose(Decision {
            current: Some(0),
            spin: true,
            alive: &[0, 1],
        });
        assert_eq!(c, 1, "spinner must yield to the other thread");
    }

    #[test]
    fn random_walk_is_replayable() {
        let walk = |seed| {
            let mut d = RandomDriver::new(seed, 30);
            let mut order = Vec::new();
            let mut current = None;
            for _ in 0..32 {
                let c = d.choose(Decision {
                    current,
                    spin: false,
                    alive: &[0, 1, 2],
                });
                order.push(c);
                current = Some(c);
            }
            order
        };
        assert_eq!(walk(42), walk(42));
        assert_ne!(walk(42), walk(43));
    }
}
