//! Cross-backend differential fuzzing: random programs, random
//! schedules, all four algorithms checked against the serial oracle and
//! the history checker.

use crate::checker::check_history;
use crate::history::{atomic_recorded, RecTx, Recorder};
use crate::program::{POp, Program};
use crate::schedule::RandomDriver;
use crate::shrink::shrink;
use crate::vthread::run_threads;
use semtm_core::chrome::chrome_trace_json;
use semtm_core::error::Abort;
use semtm_core::util::SplitMix64;
use semtm_core::{Addr, Algorithm, Mode, Stm, StmConfig, TelemetryLevel};

/// Probability (%) that the random driver preempts a runnable thread.
const SWITCH_PCT: u32 = 40;
/// Per-execution scheduling-step cap (livelock backstop).
const STEP_CAP: usize = 50_000;

/// Number of fuzz programs: `SEMTM_CHECK_ITERS` when set, else `dflt`.
pub fn iterations(dflt: usize) -> usize {
    std::env::var("SEMTM_CHECK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(dflt)
}

/// Commit-clock shard count for the check runtimes: `SEMTM_CLOCK_SHARDS`
/// when set (tier-1 reruns the whole suite with it at 4 so every
/// scenario and fuzz program also gates the sharded clock), else 1 —
/// the classical global sequence lock.
pub fn clock_shards() -> usize {
    std::env::var("SEMTM_CLOCK_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

/// Whether scheduled executions add an engine hot-swap virtual thread:
/// `SEMTM_ADAPTIVE` (any value but `0` or empty) — tier-1 reruns the
/// fuzz suite with it so every random program history is also checked
/// across two mode switches (away from the starting engine family and
/// back). The switcher performs no data operations, so the serial
/// oracle of the program is unchanged; only the engines executing the
/// transactions vary mid-history.
pub fn adaptive() -> bool {
    std::env::var("SEMTM_ADAPTIVE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The cross-family hot-swap target for a runtime currently in `mode`:
/// the other engine family, same semanticity (matching what the
/// [`semtm_core::Controller`] would propose).
pub fn flip_family(mode: Mode) -> Mode {
    Mode::new(match mode.algorithm {
        Algorithm::NOrec => Algorithm::Tl2,
        Algorithm::SNOrec => Algorithm::STl2,
        Algorithm::Tl2 => Algorithm::NOrec,
        Algorithm::STl2 => Algorithm::SNOrec,
    })
}

fn check_config(alg: Algorithm, shards: usize) -> StmConfig {
    // A sharded run gets a slightly bigger heap (8 cache lines) plus
    // padded allocation, so separately allocated cells land on distinct
    // lines and therefore distinct clock shards — otherwise a 64-word
    // micro heap collapses every address into shard 0 and the sharded
    // paths go untested.
    let sharded = shards > 1;
    let mut cfg = StmConfig::new(alg)
        .heap_words(if sharded { 128 } else { 64 })
        .orec_count(16)
        .clock_shards(shards)
        .padded_alloc(sharded);
    cfg.lock_wait_spins = 8;
    cfg.backoff_min_spins = 1;
    cfg.backoff_max_spins = 2;
    cfg
}

/// An [`Stm`] sized and tuned for scheduler-driven micro executions:
/// tiny heap, short lock patience, minimal backoff. Honors
/// [`clock_shards`].
pub fn check_stm(alg: Algorithm) -> Stm {
    check_stm_sharded(alg, clock_shards())
}

/// [`check_stm`] with an explicit commit-clock shard count, regardless
/// of the `SEMTM_CLOCK_SHARDS` environment.
pub fn check_stm_sharded(alg: Algorithm, shards: usize) -> Stm {
    Stm::new(check_config(alg, shards))
}

/// [`check_stm`] with the flight recorder on, for replaying a failing
/// schedule into a dumpable timeline. The rings are kept tiny — the
/// micro programs record a handful of spans, and exploration harnesses
/// construct one `Stm` per schedule, so the eager per-shard ring
/// allocation must stay cheap.
pub fn check_stm_traced(alg: Algorithm) -> Stm {
    check_stm_traced_sharded(alg, clock_shards())
}

/// [`check_stm_traced`] with an explicit commit-clock shard count.
pub fn check_stm_traced_sharded(alg: Algorithm, shards: usize) -> Stm {
    Stm::new(
        check_config(alg, shards)
            .telemetry(TelemetryLevel::Spans)
            .trace_capacity(64),
    )
}

fn exec_op(rtx: &mut RecTx<'_, '_>, op: POp, base: Addr, stride: usize) -> Result<(), Abort> {
    let slot = |s: usize| base.offset(s * stride);
    match op {
        POp::Read(s) => {
            rtx.read(slot(s))?;
        }
        POp::Write(s, v) => rtx.write(slot(s), v)?,
        POp::Inc(s, d) => rtx.inc(slot(s), d)?,
        POp::Cmp(s, op, c) => {
            rtx.cmp(slot(s), op, c)?;
        }
        POp::CmpAddr(a, op, b) => {
            rtx.cmp_addr(slot(a), op, slot(b))?;
        }
        POp::Guard(s, op, c, s2, d) => {
            if rtx.cmp(slot(s), op, c)? {
                rtx.inc(slot(s2), d)?;
            }
        }
    }
    Ok(())
}

/// Slot spacing in heap words: sharded runtimes place each program slot
/// on its own cache line so the slots span distinct clock shards
/// (contiguous slots would all map to shard 0 and leave the multi-shard
/// commit paths unexercised).
fn slot_stride(shards: usize) -> usize {
    if shards > 1 {
        semtm_core::heap::LINE_WORDS
    } else {
        1
    }
}

/// Run `program` once on `alg` under the random schedule `sched_seed`,
/// recording the full history. Errors describe any divergence from the
/// serial oracle or any checker violation, with enough context to
/// replay. Honors [`clock_shards`].
pub fn run_program(program: &Program, alg: Algorithm, sched_seed: u64) -> Result<(), String> {
    run_program_sharded(program, alg, sched_seed, clock_shards())
}

/// [`run_program`] with an explicit commit-clock shard count.
pub fn run_program_sharded(
    program: &Program,
    alg: Algorithm,
    sched_seed: u64,
    shards: usize,
) -> Result<(), String> {
    run_program_on(
        &check_stm_sharded(alg, shards),
        program,
        alg,
        sched_seed,
        slot_stride(shards),
        adaptive(),
    )
}

/// Replay `program` on a flight-recorder-enabled runtime under the same
/// schedule and return the recorded timeline as Chrome trace-event JSON
/// (pass/fail of the replay itself is irrelevant — the spans are the
/// product). Honors [`clock_shards`].
pub fn trace_program(program: &Program, alg: Algorithm, sched_seed: u64) -> String {
    trace_program_sharded(program, alg, sched_seed, clock_shards())
}

/// [`trace_program`] with an explicit commit-clock shard count.
pub fn trace_program_sharded(
    program: &Program,
    alg: Algorithm,
    sched_seed: u64,
    shards: usize,
) -> String {
    let stm = check_stm_traced_sharded(alg, shards);
    let _ = run_program_on(
        &stm,
        program,
        alg,
        sched_seed,
        slot_stride(shards),
        adaptive(),
    );
    chrome_trace_json(alg, &stm.telemetry().span_events())
}

fn run_program_on(
    stm: &Stm,
    program: &Program,
    alg: Algorithm,
    sched_seed: u64,
    stride: usize,
    hot_swap: bool,
) -> Result<(), String> {
    let base = stm.alloc(program.slots * stride);
    for (i, v) in program.init.iter().enumerate() {
        stm.write_now(base.offset(i * stride), *v);
    }
    let rec = Recorder::new();

    let shared = (stm, &rec, program, base, stride);
    type Shared<'a> = (&'a Stm, &'a Recorder, &'a Program, Addr, usize);
    let body = |tid: usize, shared: &Shared<'_>| {
        let (stm, rec, program, base, stride) = *shared;
        for tx in &program.threads[tid] {
            atomic_recorded(stm, rec, tid, |rtx| {
                for &op in tx {
                    exec_op(rtx, op, base, stride)?;
                }
                Ok(())
            });
        }
    };
    // Under `SEMTM_ADAPTIVE`, one extra virtual thread hot-swaps the
    // runtime to the other engine family and back, so the recorded
    // history spans three engine eras. It touches no program slot —
    // the serial oracle below is the unchanged one.
    let switcher = |_tid: usize, shared: &Shared<'_>| {
        let (stm, ..) = *shared;
        let home = stm.mode();
        let away = flip_family(home);
        stm.switch_to(away)
            .expect("unsharded modes are always available");
        stm.switch_to(home)
            .expect("the starting mode is always available");
    };
    let mut bodies: Vec<crate::vthread::Body<'_, Shared<'_>>> =
        program.threads.iter().map(|_| &body as _).collect();
    if hot_swap {
        bodies.push(&switcher);
    }

    let mut driver = RandomDriver::new(sched_seed, SWITCH_PCT);
    let outcome = run_threads(&shared, &bodies, &mut driver, STEP_CAP);
    if outcome.capped {
        return Err(format!(
            "{alg}: step cap {STEP_CAP} exceeded (livelock?) after {} steps",
            outcome.steps
        ));
    }

    let final_mem: Vec<i64> = (0..program.slots)
        .map(|i| stm.read_now(base.offset(i * stride)))
        .collect();
    if !program.serial_outcomes().contains(&final_mem) {
        return Err(format!(
            "{alg}: final state {final_mem:?} is outside the serial oracle set \
             {:?} (init {:?})",
            program.serial_outcomes(),
            program.init
        ));
    }

    let init: Vec<(Addr, i64)> = program
        .init
        .iter()
        .enumerate()
        .map(|(i, v)| (base.offset(i * stride), *v))
        .collect();
    let fin: Vec<(Addr, i64)> = final_mem
        .iter()
        .enumerate()
        .map(|(i, v)| (base.offset(i * stride), *v))
        .collect();
    check_history(&rec.attempts(), &init, &fin).map_err(|e| format!("{alg}: {e}"))
}

/// Fuzz `programs` random programs, each on every algorithm, under
/// independently seeded random schedules derived from `base_seed`.
/// Honors [`clock_shards`].
///
/// On failure the failing program is minimized with [`shrink`] and the
/// panic message carries the program, algorithm, program seed, and
/// schedule seed — everything needed to replay.
pub fn run_differential(programs: usize, base_seed: u64) {
    run_differential_sharded(programs, base_seed, clock_shards());
}

/// [`run_differential`] with an explicit commit-clock shard count —
/// the fuzz gate the sharded commit clock must pass on all four
/// backends (`tests/sharded_clock.rs`) independent of the environment.
pub fn run_differential_sharded(programs: usize, base_seed: u64, shards: usize) {
    let mut seeder = SplitMix64::new(base_seed);
    for i in 0..programs {
        let prog_seed = seeder.next_u64();
        let sched_seed = seeder.next_u64();
        let mut rng = SplitMix64::new(prog_seed);
        let program = Program::generate(&mut rng);
        for alg in Algorithm::ALL {
            if let Err(msg) = run_program_sharded(&program, alg, sched_seed, shards) {
                let minimized = shrink(&program, |p| {
                    run_program_sharded(p, alg, sched_seed, shards).is_err()
                });
                let note = crate::tracedump::dump_note(
                    &format!("fuzz_{alg}"),
                    &trace_program_sharded(&minimized, alg, sched_seed, shards),
                );
                panic!(
                    "differential fuzz failure at program {i}/{programs} on {alg} \
                     (program seed {prog_seed:#x}, schedule seed {sched_seed:#x}, \
                     base seed {base_seed:#x}, clock shards {shards}): {msg}\n{note}\n\
                     minimized program: {minimized:#?}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_swap_thread_switches_twice_and_history_still_checks() {
        // Every algorithm's random-program history must keep checking
        // with the engine hot-swapped away and back mid-schedule: two
        // completed switches on the runtime, same serial oracle.
        let mut rng = SplitMix64::new(11);
        let program = Program::generate(&mut rng);
        for alg in Algorithm::ALL {
            let stm = check_stm_sharded(alg, 1);
            run_program_on(&stm, &program, alg, 99, 1, true)
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert_eq!(stm.switch_count(), 2, "{alg}");
            assert_eq!(stm.mode(), Mode::new(alg), "{alg}: back home");
        }
    }

    #[test]
    fn trace_program_replays_into_chrome_json() {
        let mut rng = SplitMix64::new(7);
        let program = Program::generate(&mut rng);
        let json = trace_program(&program, Algorithm::SNOrec, 42);
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""), "replay must record spans");
    }
}
