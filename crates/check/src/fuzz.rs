//! Cross-backend differential fuzzing: random programs, random
//! schedules, all four algorithms checked against the serial oracle and
//! the history checker.

use crate::checker::check_history;
use crate::history::{atomic_recorded, RecTx, Recorder};
use crate::program::{POp, Program};
use crate::schedule::RandomDriver;
use crate::shrink::shrink;
use crate::vthread::run_threads;
use semtm_core::error::Abort;
use semtm_core::util::SplitMix64;
use semtm_core::{Addr, Algorithm, Stm, StmConfig};

/// Probability (%) that the random driver preempts a runnable thread.
const SWITCH_PCT: u32 = 40;
/// Per-execution scheduling-step cap (livelock backstop).
const STEP_CAP: usize = 50_000;

/// Number of fuzz programs: `SEMTM_CHECK_ITERS` when set, else `dflt`.
pub fn iterations(dflt: usize) -> usize {
    std::env::var("SEMTM_CHECK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(dflt)
}

/// An [`Stm`] sized and tuned for scheduler-driven micro executions:
/// tiny heap, short lock patience, minimal backoff.
pub fn check_stm(alg: Algorithm) -> Stm {
    let mut cfg = StmConfig::new(alg).heap_words(64).orec_count(16);
    cfg.lock_wait_spins = 8;
    cfg.backoff_min_spins = 1;
    cfg.backoff_max_spins = 2;
    Stm::new(cfg)
}

fn exec_op(rtx: &mut RecTx<'_, '_>, op: POp, base: Addr) -> Result<(), Abort> {
    match op {
        POp::Read(s) => {
            rtx.read(base.offset(s))?;
        }
        POp::Write(s, v) => rtx.write(base.offset(s), v)?,
        POp::Inc(s, d) => rtx.inc(base.offset(s), d)?,
        POp::Cmp(s, op, c) => {
            rtx.cmp(base.offset(s), op, c)?;
        }
        POp::CmpAddr(a, op, b) => {
            rtx.cmp_addr(base.offset(a), op, base.offset(b))?;
        }
        POp::Guard(s, op, c, s2, d) => {
            if rtx.cmp(base.offset(s), op, c)? {
                rtx.inc(base.offset(s2), d)?;
            }
        }
    }
    Ok(())
}

/// Run `program` once on `alg` under the random schedule `sched_seed`,
/// recording the full history. Errors describe any divergence from the
/// serial oracle or any checker violation, with enough context to
/// replay.
pub fn run_program(program: &Program, alg: Algorithm, sched_seed: u64) -> Result<(), String> {
    let stm = check_stm(alg);
    let base = stm.alloc(program.slots);
    for (i, v) in program.init.iter().enumerate() {
        stm.write_now(base.offset(i), *v);
    }
    let rec = Recorder::new();

    let shared = (&stm, &rec, program, base);
    type Shared<'a> = (&'a Stm, &'a Recorder, &'a Program, Addr);
    let body = |tid: usize, shared: &Shared<'_>| {
        let (stm, rec, program, base) = *shared;
        for tx in &program.threads[tid] {
            atomic_recorded(stm, rec, tid, |rtx| {
                for &op in tx {
                    exec_op(rtx, op, base)?;
                }
                Ok(())
            });
        }
    };
    let bodies: Vec<crate::vthread::Body<'_, Shared<'_>>> =
        program.threads.iter().map(|_| &body as _).collect();

    let mut driver = RandomDriver::new(sched_seed, SWITCH_PCT);
    let outcome = run_threads(&shared, &bodies, &mut driver, STEP_CAP);
    if outcome.capped {
        return Err(format!(
            "{alg}: step cap {STEP_CAP} exceeded (livelock?) after {} steps",
            outcome.steps
        ));
    }

    let final_mem: Vec<i64> = (0..program.slots)
        .map(|i| stm.read_now(base.offset(i)))
        .collect();
    if !program.serial_outcomes().contains(&final_mem) {
        return Err(format!(
            "{alg}: final state {final_mem:?} is outside the serial oracle set \
             {:?} (init {:?})",
            program.serial_outcomes(),
            program.init
        ));
    }

    let init: Vec<(Addr, i64)> = program
        .init
        .iter()
        .enumerate()
        .map(|(i, v)| (base.offset(i), *v))
        .collect();
    let fin: Vec<(Addr, i64)> = final_mem
        .iter()
        .enumerate()
        .map(|(i, v)| (base.offset(i), *v))
        .collect();
    check_history(&rec.attempts(), &init, &fin).map_err(|e| format!("{alg}: {e}"))
}

/// Fuzz `programs` random programs, each on every algorithm, under
/// independently seeded random schedules derived from `base_seed`.
///
/// On failure the failing program is minimized with [`shrink`] and the
/// panic message carries the program, algorithm, program seed, and
/// schedule seed — everything needed to replay.
pub fn run_differential(programs: usize, base_seed: u64) {
    let mut seeder = SplitMix64::new(base_seed);
    for i in 0..programs {
        let prog_seed = seeder.next_u64();
        let sched_seed = seeder.next_u64();
        let mut rng = SplitMix64::new(prog_seed);
        let program = Program::generate(&mut rng);
        for alg in Algorithm::ALL {
            if let Err(msg) = run_program(&program, alg, sched_seed) {
                let minimized = shrink(&program, |p| run_program(p, alg, sched_seed).is_err());
                panic!(
                    "differential fuzz failure at program {i}/{programs} on {alg} \
                     (program seed {prog_seed:#x}, schedule seed {sched_seed:#x}, \
                     base seed {base_seed:#x}): {msg}\nminimized program: {minimized:#?}"
                );
            }
        }
    }
}
