//! Virtual threads: N transaction bodies as coroutines-on-real-threads
//! with exactly one runnable at a time.
//!
//! Each body runs on its own OS thread, but a coordinator holds all of
//! them parked except one. Whenever the running body hits a schedule
//! point (`semtm_core::sched::point`/`spin`), its thread parks and the
//! coordinator picks the next thread to resume — so the interleaving of
//! the STM algorithms' racy steps is fully determined by the sequence of
//! coordinator decisions, which a [`Driver`](crate::schedule) replays,
//! enumerates, or randomises.

use crate::schedule::{Decision, Driver};
use semtm_core::sched::{self, PointKind, SchedHook};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, Once};

/// Panic payload used to unwind a worker that the coordinator cancelled
/// (e.g. after another worker failed or the step cap was hit). Filtered
/// out of the panic-hook output and of `RunOutcome::panic`.
struct Cancelled;

/// Where a worker currently stands, from the coordinator's view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Parked at a schedule point, waiting for a `Go`.
    Parked,
    /// Told to run; the worker owns the schedule until it parks again.
    Go,
    /// Body returned (or unwound); never runnable again.
    Done,
}

struct SlotState {
    phase: Phase,
    /// Whether the most recent park came from `sched::spin()` (a futile
    /// wait iteration) rather than a regular point.
    spin: bool,
    /// Set by the coordinator to make the next resume unwind the body.
    cancel: bool,
}

/// One worker's rendezvous cell with the coordinator.
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: Mutex::new(SlotState {
                phase: Phase::Go, // workers start running until their first point
                spin: false,
                cancel: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Worker side: park at a schedule point and wait to be resumed.
    fn park(&self, spin: bool) {
        let mut st = self.state.lock().unwrap();
        st.phase = Phase::Parked;
        st.spin = spin;
        self.cv.notify_all();
        while st.phase != Phase::Go {
            st = self.cv.wait(st).unwrap();
        }
        if st.cancel {
            drop(st);
            panic::panic_any(Cancelled);
        }
    }

    /// Worker side: mark the body finished.
    fn finish(&self) {
        let mut st = self.state.lock().unwrap();
        st.phase = Phase::Done;
        self.cv.notify_all();
    }

    /// Coordinator side: resume the worker and block until it parks
    /// again or finishes. Returns `true` while the worker is still alive.
    fn resume_and_wait(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        debug_assert_eq!(st.phase, Phase::Parked);
        st.phase = Phase::Go;
        self.cv.notify_all();
        while st.phase == Phase::Go {
            st = self.cv.wait(st).unwrap();
        }
        st.phase == Phase::Parked
    }

    /// Coordinator side: wait for the worker's first park (workers start
    /// in `Go` so they run up to their first schedule point unprompted).
    fn wait_initial(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        while st.phase == Phase::Go {
            st = self.cv.wait(st).unwrap();
        }
        st.phase == Phase::Parked
    }
}

/// The per-worker [`SchedHook`] installed for the body's thread.
struct WorkerHook {
    slot: Arc<Slot>,
}

impl SchedHook for WorkerHook {
    fn point(&self, _kind: PointKind) {
        self.slot.park(false);
    }
    fn spin(&self) {
        self.slot.park(true);
    }
}

/// Install a process-wide panic hook (once) that silences the expected
/// [`Cancelled`] unwinds and delegates everything else to the default.
fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Cancelled>().is_none() {
                default(info);
            }
        }));
    });
}

/// What one scheduled execution did.
#[derive(Debug)]
pub struct RunOutcome {
    /// Number of coordinator resume decisions taken.
    pub steps: usize,
    /// Whether the execution was cut off by the step cap (livelock guard).
    pub capped: bool,
}

/// A virtual-thread body: called with `(thread index, shared state)`.
pub type Body<'b, S> = &'b (dyn Fn(usize, &S) + Sync);

/// Run `bodies` under `driver`'s schedule. `shared` is passed to every
/// body together with its thread index.
///
/// Every body runs to completion (or unwinds) before this returns. A
/// panic in a body (other than coordinator cancellation) cancels the
/// remaining workers and is re-raised on the calling thread, so test
/// assertions inside bodies behave as usual.
///
/// `step_cap` bounds the number of scheduling decisions as a livelock
/// backstop; hitting it cancels all workers and reports `capped: true`.
pub fn run_threads<S: Sync + ?Sized>(
    shared: &S,
    bodies: &[Body<'_, S>],
    driver: &mut dyn Driver,
    step_cap: usize,
) -> RunOutcome {
    install_quiet_panic_hook();
    let n = bodies.len();
    let slots: Vec<Arc<Slot>> = (0..n).map(|_| Arc::new(Slot::new())).collect();
    let mut outcome = RunOutcome {
        steps: 0,
        capped: false,
    };
    let mut body_panic: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (i, body) in bodies.iter().enumerate() {
            let slot = slots[i].clone();
            handles.push(scope.spawn(move || {
                let hook: Arc<dyn SchedHook> = Arc::new(WorkerHook { slot: slot.clone() });
                sched::install_hook(hook);
                let result = panic::catch_unwind(AssertUnwindSafe(|| body(i, shared)));
                sched::clear_hook();
                slot.finish();
                match result {
                    Ok(()) => Ok(()),
                    Err(p) if p.downcast_ref::<Cancelled>().is_some() => Ok(()),
                    Err(p) => Err(p),
                }
            }));
        }

        // alive[i]: worker has parked at a point and can be resumed.
        let mut alive: Vec<bool> = Vec::with_capacity(n);
        let mut spinning: Vec<bool> = vec![false; n];
        for (i, slot) in slots.iter().enumerate() {
            let parked = slot.wait_initial();
            alive.push(parked);
            if parked {
                spinning[i] = slot.state.lock().unwrap().spin;
            }
        }

        let mut current: Option<usize> = None;
        loop {
            let alive_ids: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
            if alive_ids.is_empty() {
                break;
            }
            if outcome.steps >= step_cap {
                outcome.capped = true;
                cancel_all(&slots, &alive);
                break;
            }
            let chosen = driver.choose(Decision {
                current,
                spin: current.map(|c| spinning[c]).unwrap_or(false),
                alive: &alive_ids,
            });
            debug_assert!(alive[chosen], "driver chose a finished worker");
            outcome.steps += 1;
            let still_alive = slots[chosen].resume_and_wait();
            alive[chosen] = still_alive;
            if still_alive {
                spinning[chosen] = slots[chosen].state.lock().unwrap().spin;
                current = Some(chosen);
            } else {
                current = None; // completion: next switch is free
            }
        }

        for h in handles {
            if let Err(p) = h.join().expect("worker thread itself must not die") {
                body_panic.get_or_insert(p);
            }
        }
    });

    if let Some(p) = body_panic {
        panic::resume_unwind(p);
    }
    outcome
}

/// Cancel every still-parked worker so the scope can join them.
fn cancel_all(slots: &[Arc<Slot>], alive: &[bool]) {
    for (i, slot) in slots.iter().enumerate() {
        if !alive[i] {
            continue;
        }
        let mut st = slot.state.lock().unwrap();
        st.cancel = true;
        st.phase = Phase::Go;
        slot.cv.notify_all();
        while st.phase == Phase::Go {
            st = slot.cv.wait(st).unwrap();
        }
    }
}
