//! Failing-program minimization: greedily remove structure while the
//! failure reproduces, so reports show the smallest program that still
//! breaks.

use crate::program::{POp, Program};

/// Shrink `program` to a (local) minimum under `fails`. `fails` must be
/// `true` for the input program; every candidate simplification is kept
/// only if it still fails.
pub fn shrink(program: &Program, mut fails: impl FnMut(&Program) -> bool) -> Program {
    let mut best = program.clone();
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if fails(&cand) {
                best = cand;
                improved = true;
                break; // restart from the smaller program
            }
        }
        if !improved {
            return best;
        }
    }
}

/// One-step simplifications, most aggressive first.
fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    // Drop a whole thread (keep at least one).
    if p.threads.len() > 1 {
        for t in 0..p.threads.len() {
            let mut q = p.clone();
            q.threads.remove(t);
            out.push(q);
        }
    }
    // Drop one transaction.
    for t in 0..p.threads.len() {
        if p.threads[t].len() > 1 {
            for x in 0..p.threads[t].len() {
                let mut q = p.clone();
                q.threads[t].remove(x);
                out.push(q);
            }
        }
    }
    // Drop one op.
    for t in 0..p.threads.len() {
        for x in 0..p.threads[t].len() {
            if p.threads[t][x].len() > 1 {
                for o in 0..p.threads[t][x].len() {
                    let mut q = p.clone();
                    q.threads[t][x].remove(o);
                    out.push(q);
                }
            }
        }
    }
    // Zero a constant (or collapse it toward the simplest value).
    for t in 0..p.threads.len() {
        for x in 0..p.threads[t].len() {
            for o in 0..p.threads[t][x].len() {
                let simpler = match p.threads[t][x][o] {
                    POp::Write(s, v) if v != 0 => Some(POp::Write(s, 0)),
                    POp::Inc(s, d) if d != 1 => Some(POp::Inc(s, 1)),
                    POp::Cmp(s, op, c) if c != 0 => Some(POp::Cmp(s, op, 0)),
                    POp::Guard(s, op, c, s2, d) if c != 0 || d != 1 => {
                        Some(POp::Guard(s, op, 0, s2, 1))
                    }
                    _ => None,
                };
                if let Some(op) = simpler {
                    let mut q = p.clone();
                    q.threads[t][x][o] = op;
                    out.push(q);
                }
            }
        }
    }
    // Zero an initial value.
    for s in 0..p.slots {
        if p.init[s] != 0 {
            let mut q = p.clone();
            q.init[s] = 0;
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::ops::CmpOp;

    #[test]
    fn shrink_reaches_a_minimal_program() {
        // Failure criterion: some thread writes to slot 0. Everything
        // else should shrink away.
        let p = Program {
            slots: 3,
            init: vec![5, -2, 1],
            threads: vec![
                vec![
                    vec![POp::Read(1), POp::Write(0, 3), POp::Cmp(2, CmpOp::Gt, 1)],
                    vec![POp::Inc(2, 2)],
                ],
                vec![vec![POp::Read(2)]],
            ],
        };
        let writes_slot0 = |p: &Program| {
            p.threads
                .iter()
                .flatten()
                .flatten()
                .any(|op| matches!(op, POp::Write(0, _)))
        };
        assert!(writes_slot0(&p));
        let m = shrink(&p, writes_slot0);
        assert_eq!(m.threads.len(), 1);
        assert_eq!(m.threads[0].len(), 1);
        assert_eq!(m.threads[0][0], vec![POp::Write(0, 0)]);
        assert_eq!(m.init, vec![0, 0, 0]);
    }

    #[test]
    fn shrink_returns_input_when_nothing_simpler_fails() {
        let p = Program {
            slots: 1,
            init: vec![0],
            threads: vec![vec![vec![POp::Inc(0, 1)]]],
        };
        let m = shrink(&p, |q| q == &p);
        assert_eq!(m, p);
    }
}
