//! History checker: final-state serializability of committed attempts
//! and zombie-freedom (opacity for aborted attempts).
//!
//! Inputs come from [`crate::history::Recorder`] runs under the
//! deterministic scheduler. Two properties are verified:
//!
//! 1. **Serializability**: there is a total order of the committed
//!    attempts, consistent with real time (an attempt that ended before
//!    another began must precede it), under which every recorded read
//!    observes the value the serial replay produces, every recorded
//!    compare's outcome matches, and the serial replay reproduces the
//!    observed final memory.
//! 2. **Zombie-freedom**: every *aborted* attempt's observations are
//!    consistent with **some** memory state that existed while it ran —
//!    i.e. a prefix of the commit order whose length lies between the
//!    number of commits that finished before the attempt began and the
//!    number that finished before it ended. An aborted transaction may
//!    be stale, but it must never have observed a state no serial
//!    execution could produce (the paper's Algorithm 9 situation).

use crate::history::{Attempt, CmpRhs, OpRec};
use semtm_core::Addr;
use std::collections::HashMap;

/// A memory state over the tracked slots.
type Mem = HashMap<u32, i64>;

fn addr_key(a: Addr) -> u32 {
    a.index() as u32
}

/// Pending local effect of a write-set entry during replay.
#[derive(Clone, Copy)]
enum Buffered {
    Store(i64),
    Inc(i64),
}

/// Replay one attempt's ops against `mem`, checking every observation.
/// On success returns the memory after applying the attempt's effects.
fn replay_consistent(at: &Attempt, mem: &Mem) -> Result<Mem, String> {
    let mut buf: HashMap<u32, Buffered> = HashMap::new();
    let load = |mem: &Mem, k: u32| mem.get(&k).copied().unwrap_or(0);
    // The value the transaction observes for a slot: write-buffer first.
    let observe = |buf: &HashMap<u32, Buffered>, mem: &Mem, k: u32| match buf.get(&k) {
        Some(Buffered::Store(v)) => *v,
        Some(Buffered::Inc(d)) => load(mem, k).wrapping_add(*d),
        None => load(mem, k),
    };
    for op in &at.ops {
        match *op {
            OpRec::Read { addr, val, seq } => {
                let k = addr_key(addr);
                let got = observe(&buf, mem, k);
                if got != val {
                    return Err(format!(
                        "read @{k} (seq {seq}) observed {val}, serial replay gives {got}"
                    ));
                }
                // A read of a pending Inc promotes it: the observed value
                // is pinned and committed verbatim (Algorithm 6 RAW).
                if let Some(Buffered::Inc(_)) = buf.get(&k) {
                    buf.insert(k, Buffered::Store(val));
                }
            }
            OpRec::Cmp {
                a,
                op,
                rhs,
                out,
                seq,
            } => {
                let ka = addr_key(a);
                let va = observe(&buf, mem, ka);
                let vb = match rhs {
                    CmpRhs::Const(c) => c,
                    CmpRhs::Slot(b) => observe(&buf, mem, addr_key(b)),
                };
                if op.eval(va, vb) != out {
                    return Err(format!(
                        "cmp @{ka} {op:?} (seq {seq}) observed {out}, serial replay gives {}",
                        op.eval(va, vb)
                    ));
                }
            }
            OpRec::Write { addr, val, .. } => {
                buf.insert(addr_key(addr), Buffered::Store(val));
            }
            OpRec::Inc { addr, delta, .. } => {
                let k = addr_key(addr);
                let next = match buf.get(&k) {
                    Some(Buffered::Store(v)) => Buffered::Store(v.wrapping_add(delta)),
                    Some(Buffered::Inc(d)) => Buffered::Inc(d.wrapping_add(delta)),
                    None => Buffered::Inc(delta),
                };
                buf.insert(k, next);
            }
        }
    }
    let mut out = mem.clone();
    for (k, b) in buf {
        let v = match b {
            Buffered::Store(v) => v,
            Buffered::Inc(d) => load(&out, k).wrapping_add(d),
        };
        out.insert(k, v);
    }
    Ok(out)
}

/// Apply only the attempt's effects (no observation checking): the state
/// trajectory real write-backs produced, used for the zombie check.
fn replay_effects(at: &Attempt, mem: &mut Mem) {
    let mut buf: HashMap<u32, Buffered> = HashMap::new();
    for op in &at.ops {
        match *op {
            OpRec::Read { addr, val, .. } => {
                let k = addr_key(addr);
                if let Some(Buffered::Inc(_)) = buf.get(&k) {
                    buf.insert(k, Buffered::Store(val));
                }
            }
            OpRec::Write { addr, val, .. } => {
                buf.insert(addr_key(addr), Buffered::Store(val));
            }
            OpRec::Inc { addr, delta, .. } => {
                let k = addr_key(addr);
                let next = match buf.get(&k) {
                    Some(Buffered::Store(v)) => Buffered::Store(v.wrapping_add(delta)),
                    Some(Buffered::Inc(d)) => Buffered::Inc(d.wrapping_add(delta)),
                    None => Buffered::Inc(delta),
                };
                buf.insert(k, next);
            }
            OpRec::Cmp { .. } => {}
        }
    }
    for (k, b) in buf {
        let v = match b {
            Buffered::Store(v) => v,
            Buffered::Inc(d) => mem.get(&k).copied().unwrap_or(0).wrapping_add(d),
        };
        mem.insert(k, v);
    }
}

/// Search for a serial order of `committed` (indices), consistent with
/// real time, replaying from `init` and matching `final_mem` at the end.
fn serialize_dfs(
    committed: &[&Attempt],
    order: &mut Vec<usize>,
    used: &mut Vec<bool>,
    mem: &Mem,
    final_mem: &Mem,
) -> bool {
    if order.len() == committed.len() {
        // All tracked slots must agree with the observed final memory.
        return final_mem
            .iter()
            .all(|(k, v)| mem.get(k).copied().unwrap_or(0) == *v);
    }
    'next: for i in 0..committed.len() {
        if used[i] {
            continue;
        }
        // Real-time edge: an unused attempt that ended before `i` began
        // must be serialized first.
        for j in 0..committed.len() {
            if i != j && !used[j] && committed[j].end_seq < committed[i].begin_seq {
                continue 'next;
            }
        }
        if let Ok(next) = replay_consistent(committed[i], mem) {
            used[i] = true;
            order.push(i);
            if serialize_dfs(committed, order, used, &next, final_mem) {
                return true;
            }
            order.pop();
            used[i] = false;
        }
    }
    false
}

/// Check one recorded execution.
///
/// * `attempts` — everything the recorder captured.
/// * `init` — initial values of the tracked slots.
/// * `final_mem` — observed final values (read non-transactionally after
///   all threads joined).
///
/// Returns `Err` with a diagnostic when the history is not serializable
/// or an aborted attempt observed an impossible (zombie) state.
pub fn check_history(
    attempts: &[Attempt],
    init: &[(Addr, i64)],
    final_mem: &[(Addr, i64)],
) -> Result<(), String> {
    let init_mem: Mem = init.iter().map(|(a, v)| (addr_key(*a), *v)).collect();
    let final_map: Mem = final_mem.iter().map(|(a, v)| (addr_key(*a), *v)).collect();

    let committed: Vec<&Attempt> = attempts.iter().filter(|a| a.committed).collect();
    let aborted: Vec<&Attempt> = attempts.iter().filter(|a| !a.committed).collect();

    // 1. Serializability of the committed attempts.
    let mut order = Vec::new();
    let mut used = vec![false; committed.len()];
    if !serialize_dfs(&committed, &mut order, &mut used, &init_mem, &final_map) {
        return Err(format!(
            "no real-time-consistent serial order of {} committed attempts \
             reproduces the observed reads and final memory",
            committed.len()
        ));
    }

    // 2. Zombie-freedom of aborted attempts, against the *actual* commit
    //    order (end_seq order equals write-back order because write-back
    //    and release form one atomic scheduler step).
    let mut by_end: Vec<&Attempt> = committed.clone();
    by_end.sort_by_key(|a| a.end_seq);
    let mut states: Vec<Mem> = Vec::with_capacity(by_end.len() + 1);
    states.push(init_mem.clone());
    for at in &by_end {
        let mut next = states.last().unwrap().clone();
        replay_effects(at, &mut next);
        states.push(next);
    }

    for ab in &aborted {
        if ab.ops.is_empty() {
            continue;
        }
        let lo = by_end.iter().filter(|c| c.end_seq < ab.begin_seq).count();
        let hi = by_end.iter().filter(|c| c.end_seq < ab.end_seq).count();
        let consistent = (lo..=hi).any(|k| replay_consistent(ab, &states[k]).is_ok());
        if !consistent {
            return Err(format!(
                "zombie: aborted attempt on thread {} (begin {}, end {}) observed a state \
                 no commit prefix in [{lo}, {hi}] can explain: {:?}",
                ab.thread, ab.begin_seq, ab.end_seq, ab.ops
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtm_core::CmpOp;

    fn addr(i: usize) -> Addr {
        Addr::from_index(i)
    }

    fn attempt(thread: usize, begin: u64, end: u64, committed: bool, ops: Vec<OpRec>) -> Attempt {
        Attempt {
            thread,
            begin_seq: begin,
            end_seq: end,
            committed,
            ops,
        }
    }

    #[test]
    fn empty_history_is_serializable() {
        assert!(check_history(&[], &[(addr(0), 5)], &[(addr(0), 5)]).is_ok());
    }

    #[test]
    fn two_committed_writers_serialize() {
        let a = addr(0);
        let h = vec![
            attempt(
                0,
                0,
                3,
                true,
                vec![
                    OpRec::Read {
                        addr: a,
                        val: 0,
                        seq: 1,
                    },
                    OpRec::Write {
                        addr: a,
                        val: 1,
                        seq: 2,
                    },
                ],
            ),
            attempt(
                1,
                4,
                7,
                true,
                vec![
                    OpRec::Read {
                        addr: a,
                        val: 1,
                        seq: 5,
                    },
                    OpRec::Write {
                        addr: a,
                        val: 2,
                        seq: 6,
                    },
                ],
            ),
        ];
        assert!(check_history(&h, &[(a, 0)], &[(a, 2)]).is_ok());
    }

    #[test]
    fn lost_update_is_rejected() {
        // Both read 0 and write read+1: final memory 1, but no serial
        // order explains both reads of 0 with final 1... actually a
        // serial order [T1, T2] forces T2 to read 1. Not serializable.
        let a = addr(0);
        let read0 = |seq| OpRec::Read {
            addr: a,
            val: 0,
            seq,
        };
        let write1 = |seq| OpRec::Write {
            addr: a,
            val: 1,
            seq,
        };
        let h = vec![
            attempt(0, 0, 10, true, vec![read0(1), write1(2)]),
            attempt(1, 3, 11, true, vec![read0(4), write1(5)]),
        ];
        assert!(check_history(&h, &[(a, 0)], &[(a, 1)]).is_err());
    }

    #[test]
    fn real_time_order_is_respected() {
        // T1 ends before T2 begins, so T1 must serialize first — but its
        // read only fits after T2's write. Contradiction: rejected.
        let a = addr(0);
        let h = vec![
            attempt(
                0,
                0,
                2,
                true,
                vec![OpRec::Read {
                    addr: a,
                    val: 7,
                    seq: 1,
                }],
            ),
            attempt(
                1,
                5,
                8,
                true,
                vec![OpRec::Write {
                    addr: a,
                    val: 7,
                    seq: 6,
                }],
            ),
        ];
        assert!(check_history(&h, &[(a, 0)], &[(a, 7)]).is_err());
    }

    #[test]
    fn cmp_outcomes_are_checked_semantically() {
        let x = addr(0);
        let h = vec![attempt(
            0,
            0,
            3,
            true,
            vec![OpRec::Cmp {
                a: x,
                op: CmpOp::Gt,
                rhs: CmpRhs::Const(0),
                out: true,
                seq: 1,
            }],
        )];
        assert!(check_history(&h, &[(x, 5)], &[(x, 5)]).is_ok());
        assert!(
            check_history(&h, &[(x, -5)], &[(x, -5)]).is_err(),
            "observed outcome true contradicts x = -5"
        );
    }

    #[test]
    fn inc_promotion_pins_the_read_value() {
        // inc(+2) then read observing 9 means base was 7; committing must
        // store 9 even if memory moved meanwhile (it cannot, serially).
        let a = addr(0);
        let h = vec![attempt(
            0,
            0,
            4,
            true,
            vec![
                OpRec::Inc {
                    addr: a,
                    delta: 2,
                    seq: 1,
                },
                OpRec::Read {
                    addr: a,
                    val: 9,
                    seq: 2,
                },
            ],
        )];
        assert!(check_history(&h, &[(a, 7)], &[(a, 9)]).is_ok());
        assert!(check_history(&h, &[(a, 6)], &[(a, 9)]).is_err());
    }

    #[test]
    fn zombie_read_is_detected() {
        // Committed T2 writes x=1,y=1 atomically. Aborted T1 read x=1 but
        // y=0 — a state that never existed (neither before nor after T2).
        let x = addr(0);
        let y = addr(1);
        let t2 = attempt(
            1,
            0,
            5,
            true,
            vec![
                OpRec::Write {
                    addr: x,
                    val: 1,
                    seq: 1,
                },
                OpRec::Write {
                    addr: y,
                    val: 1,
                    seq: 2,
                },
            ],
        );
        let t1_zombie = attempt(
            0,
            3,
            9,
            false,
            vec![
                OpRec::Read {
                    addr: x,
                    val: 1,
                    seq: 6,
                },
                OpRec::Read {
                    addr: y,
                    val: 0,
                    seq: 7,
                },
            ],
        );
        let init = [(x, 0), (y, 0)];
        let fin = [(x, 1), (y, 1)];
        assert!(check_history(&[t2.clone(), t1_zombie], &init, &fin).is_err());

        // A stale-but-consistent aborted read (both pre-state) is fine.
        let t1_stale = attempt(
            0,
            3,
            9,
            false,
            vec![
                OpRec::Read {
                    addr: x,
                    val: 0,
                    seq: 6,
                },
                OpRec::Read {
                    addr: y,
                    val: 0,
                    seq: 7,
                },
            ],
        );
        assert!(check_history(&[t2, t1_stale], &init, &fin).is_ok());
    }
}
