//! Random transaction programs over a small heap, plus the serial
//! oracle that enumerates every outcome a serializable execution may
//! produce.

use semtm_core::ops::CmpOp;
use semtm_core::util::SplitMix64;
use std::collections::BTreeSet;

/// One operation of a generated transaction. Slots index into the
/// program's small heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum POp {
    /// `TM_READ(slot)`.
    Read(usize),
    /// `TM_WRITE(slot, value)`.
    Write(usize, i64),
    /// `TM_INC(slot, delta)`.
    Inc(usize, i64),
    /// `TM_GT/…(slot, const)`.
    Cmp(usize, CmpOp, i64),
    /// `TM_GT/…(slot, slot)` — the address–address form.
    CmpAddr(usize, CmpOp, usize),
    /// `if cmp(slot, op, c) { inc(slot2, delta) }` — control flow that
    /// depends on an observation, the pattern semantic validation is for.
    Guard(usize, CmpOp, i64, usize, i64),
}

/// One transaction: its ops in program order.
pub type TxProg = Vec<POp>;

/// A complete multi-threaded program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Number of heap slots.
    pub slots: usize,
    /// Initial slot values.
    pub init: Vec<i64>,
    /// Per-thread transaction sequences.
    pub threads: Vec<Vec<TxProg>>,
}

const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Gt,
    CmpOp::Gte,
    CmpOp::Lt,
    CmpOp::Lte,
    CmpOp::Eq,
    CmpOp::Neq,
];

impl Program {
    /// Generate a random program: 3–5 slots, 2–3 threads, 1–2 txs per
    /// thread, 1–4 ops per tx, constants in −3..=3.
    pub fn generate(rng: &mut SplitMix64) -> Program {
        let slots = 3 + rng.index(3);
        let init: Vec<i64> = (0..slots).map(|_| rng.below(7) as i64 - 3).collect();
        let n_threads = 2 + rng.index(2);
        let mut threads = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            let n_txs = 1 + rng.index(2);
            let mut txs = Vec::with_capacity(n_txs);
            for _ in 0..n_txs {
                let n_ops = 1 + rng.index(4);
                let mut ops = Vec::with_capacity(n_ops);
                for _ in 0..n_ops {
                    let s = rng.index(slots);
                    let c = rng.below(7) as i64 - 3;
                    let op = CMP_OPS[rng.index(CMP_OPS.len())];
                    ops.push(match rng.index(6) {
                        0 => POp::Read(s),
                        1 => POp::Write(s, c),
                        2 => POp::Inc(s, if c == 0 { 1 } else { c }),
                        3 => POp::Cmp(s, op, c),
                        4 => POp::CmpAddr(s, op, rng.index(slots)),
                        _ => POp::Guard(s, op, c, rng.index(slots), if c == 0 { 1 } else { c }),
                    });
                }
                txs.push(ops);
            }
            threads.push(txs);
        }
        Program {
            slots,
            init,
            threads,
        }
    }

    /// Total number of transactions across all threads.
    pub fn tx_count(&self) -> usize {
        self.threads.iter().map(|t| t.len()).sum()
    }

    /// Apply one transaction to `mem` as if it ran alone (serially).
    fn apply_tx(tx: &TxProg, mem: &mut [i64]) {
        for op in tx {
            match *op {
                POp::Read(_) | POp::Cmp(..) | POp::CmpAddr(..) => {}
                POp::Write(s, v) => mem[s] = v,
                POp::Inc(s, d) => mem[s] = mem[s].wrapping_add(d),
                POp::Guard(s, op, c, s2, d) => {
                    if op.eval(mem[s], c) {
                        mem[s2] = mem[s2].wrapping_add(d);
                    }
                }
            }
        }
    }

    /// Every final memory state some serial order of the transactions
    /// (respecting per-thread program order) can produce. This is the
    /// oracle the differential fuzzer compares all four algorithms
    /// against: a serializable STM must land in this set.
    pub fn serial_outcomes(&self) -> BTreeSet<Vec<i64>> {
        let mut outcomes = BTreeSet::new();
        let mut cursors = vec![0usize; self.threads.len()];
        let mut mem = self.init.clone();
        self.enumerate(&mut cursors, &mut mem, &mut outcomes);
        outcomes
    }

    fn enumerate(
        &self,
        cursors: &mut [usize],
        mem: &mut Vec<i64>,
        outcomes: &mut BTreeSet<Vec<i64>>,
    ) {
        let mut any = false;
        for t in 0..self.threads.len() {
            if cursors[t] < self.threads[t].len() {
                any = true;
                let saved = mem.clone();
                Self::apply_tx(&self.threads[t][cursors[t]], mem);
                cursors[t] += 1;
                self.enumerate(cursors, mem, outcomes);
                cursors[t] -= 1;
                *mem = saved;
            }
        }
        if !any {
            outcomes.insert(mem.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_enumerates_all_serial_orders() {
        // T0: x = 1 ; T1: x = 2 — two possible final states.
        let p = Program {
            slots: 1,
            init: vec![0],
            threads: vec![vec![vec![POp::Write(0, 1)]], vec![vec![POp::Write(0, 2)]]],
        };
        let out = p.serial_outcomes();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&vec![1]) && out.contains(&vec![2]));
    }

    #[test]
    fn oracle_respects_program_order_within_a_thread() {
        // One thread, two txs: x=1 then x+=10. Only 11 is reachable.
        let p = Program {
            slots: 1,
            init: vec![0],
            threads: vec![vec![vec![POp::Write(0, 1)], vec![POp::Inc(0, 10)]]],
        };
        assert_eq!(p.serial_outcomes(), BTreeSet::from([vec![11]]));
    }

    #[test]
    fn guard_makes_outcomes_order_dependent() {
        // T0: if x > 0 { y += 1 } ; T1: x = -1. y ends at 1 or 0
        // depending on the order.
        let p = Program {
            slots: 2,
            init: vec![5, 0],
            threads: vec![
                vec![vec![POp::Guard(0, CmpOp::Gt, 0, 1, 1)]],
                vec![vec![POp::Write(0, -1)]],
            ],
        };
        let out = p.serial_outcomes();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&vec![-1, 1]) && out.contains(&vec![-1, 0]));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        assert_eq!(Program::generate(&mut a), Program::generate(&mut b));
        let mut c = SplitMix64::new(8);
        assert_ne!(Program::generate(&mut a), Program::generate(&mut c));
    }

    #[test]
    fn generated_programs_stay_in_bounds() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..200 {
            let p = Program::generate(&mut rng);
            assert!((3..=5).contains(&p.slots));
            assert_eq!(p.init.len(), p.slots);
            assert!((2..=3).contains(&p.threads.len()));
            for txs in &p.threads {
                assert!((1..=2).contains(&txs.len()));
                for tx in txs {
                    assert!((1..=4).contains(&tx.len()));
                    for op in tx {
                        let ok = match *op {
                            POp::Read(s)
                            | POp::Write(s, _)
                            | POp::Inc(s, _)
                            | POp::Cmp(s, _, _) => s < p.slots,
                            POp::CmpAddr(a, _, b) => a < p.slots && b < p.slots,
                            POp::Guard(a, _, _, b, _) => a < p.slots && b < p.slots,
                        };
                        assert!(ok, "slot out of bounds in {op:?}");
                    }
                }
            }
            assert!(!p.serial_outcomes().is_empty());
        }
    }
}
