//! Shared exploration scenarios used both by the clean-run smoke tests
//! and the fault-injection regression tests.
//!
//! Each function runs one two-thread scenario under the given schedule
//! driver, records the full history, and checks it. With the algorithms
//! unmodified every bounded schedule passes; with the corresponding
//! fault armed (`semtm_core::fault`) some schedule commits a
//! non-serializable history and the checker reports it.

use crate::checker::check_history;
use crate::fuzz::{check_stm_traced, check_stm_traced_sharded};
use crate::history::{atomic_recorded, Recorder};
use crate::schedule::Driver;
use crate::tracedump::dump_note;
use crate::vthread::run_threads;
use semtm_core::chrome::chrome_trace_json;
use semtm_core::ops::CmpOp;
use semtm_core::wal::{DurabilityMode, SimStorage};
use semtm_core::{Algorithm, Mode, Stm, StmConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

const STEP_CAP: usize = 20_000;

type Shared<'a> = (&'a Stm, &'a Recorder);

/// S-NOrec revalidation scenario (the bug: skipping the per-entry
/// semantic re-check during `Validate`).
///
/// `T0: if x > 0 { out = 1 }; read y` vs `T1: x = -5; y = 1` (one tx).
/// If T1 commits between T0's `cmp` and its read of `y`, a correct
/// S-NOrec revalidates `x > 0` (now false) and aborts T0's attempt.
/// Skipping revalidation lets T0 commit having observed both
/// `x > 0 == true` and `y == 1` — no serial order explains that
/// (`[T0,T1]` gives `y = 0`; `[T1,T0]` gives `x > 0` false).
pub fn snorec_revalidation(driver: &mut dyn Driver) -> Result<(), String> {
    let stm = check_stm_traced(Algorithm::SNOrec);
    let x = stm.alloc_cell(5i64);
    let y = stm.alloc_cell(0i64);
    let out = stm.alloc_cell(0i64);
    let rec = Recorder::new();
    let shared = (&stm, &rec);
    let t0 = |tid: usize, (stm, rec): &Shared<'_>| {
        atomic_recorded(stm, rec, tid, |tx| {
            if tx.cmp(x, CmpOp::Gt, 0)? {
                tx.write(out, 1)?;
            }
            tx.read(y).map(|_| ())
        });
    };
    let t1 = |tid: usize, (stm, rec): &Shared<'_>| {
        atomic_recorded(stm, rec, tid, |tx| {
            tx.write(x, -5)?;
            tx.write(y, 1)
        });
    };
    let o = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
    if o.capped {
        return Err("step cap exceeded".into());
    }
    check_history(
        &rec.attempts(),
        &[(x, 5), (y, 0), (out, 0)],
        &[
            (x, stm.read_now(x)),
            (y, stm.read_now(y)),
            (out, stm.read_now(out)),
        ],
    )
    .map_err(|e| {
        // The violating schedule's own flight-recorder timeline, for
        // post-mortem in Perfetto.
        let json = chrome_trace_json(Algorithm::SNOrec, &stm.telemetry().span_events());
        format!("{e}\n{}", dump_note("scenario_snorec_revalidation", &json))
    })
}

/// TL2 commit-time read-validation scenario (the bug: skipping
/// `ValidateReadSet` when the commit timestamp moved).
///
/// `T0: read x; y = 2` vs `T1: x = -5; y = 1` (one tx). If T1 commits
/// inside T0's execution window, a correct TL2 sees x's orec newer than
/// T0's start version at commit and aborts. Skipping read validation
/// publishes `y = 2` while T0 observed the pre-T1 `x = 5` — with final
/// memory `x = -5, y = 2`, neither serial order fits (`[T0,T1]` ends
/// with `y = 1`; `[T1,T0]` means T0 read `x = -5`).
pub fn tl2_read_validation(driver: &mut dyn Driver) -> Result<(), String> {
    let stm = check_stm_traced(Algorithm::Tl2);
    let x = stm.alloc_cell(5i64);
    let y = stm.alloc_cell(0i64);
    let rec = Recorder::new();
    let shared = (&stm, &rec);
    let t0 = |tid: usize, (stm, rec): &Shared<'_>| {
        atomic_recorded(stm, rec, tid, |tx| {
            tx.read(x)?;
            tx.write(y, 2)
        });
    };
    let t1 = |tid: usize, (stm, rec): &Shared<'_>| {
        atomic_recorded(stm, rec, tid, |tx| {
            tx.write(x, -5)?;
            tx.write(y, 1)
        });
    };
    let o = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
    if o.capped {
        return Err("step cap exceeded".into());
    }
    check_history(
        &rec.attempts(),
        &[(x, 5), (y, 0)],
        &[(x, stm.read_now(x)), (y, stm.read_now(y))],
    )
    .map_err(|e| {
        let json = chrome_trace_json(Algorithm::Tl2, &stm.telemetry().span_events());
        format!("{e}\n{}", dump_note("scenario_tl2_read_validation", &json))
    })
}

/// Engine hot-swap drain scenario (the bug: skipping the drain barrier,
/// so an in-flight S-NOrec attempt keeps running after the runtime has
/// reseeded and later commits run S-TL2 — whose commits never move the
/// NOrec sequence lock, so the straggler stops revalidating).
///
/// `T0: if x > 0 { out = 1 }; read z; read y` vs `T1: x = -5; y = 1`
/// (one tx) with `T2: switch_to(S-TL2)`. Correctly drained, T0 retires
/// before the mode changes and every interleaving serializes. With
/// `ADAPT_SKIP_DRAIN` armed there is a schedule where (1) T0 passes its
/// cmp under S-NOrec, (2) the switch reseeds (NOrec clock bump) and
/// publishes S-TL2 without waiting, (3) T0's read of `z` revalidates
/// against the bumped clock — `x` is still 5, so the snapshot extends —
/// then (4) T1 commits `x = -5, y = 1` *under S-TL2*, leaving the NOrec
/// clock untouched, and (5) T0 reads `y = 1` with no revalidation and
/// commits: it observed both `x > 0` and `y = 1`, which no serial order
/// explains (`[T0,T1]` gives `y = 0` at T0's read; `[T1,T0]` makes the
/// cmp false).
pub fn adaptive_switch_drain(driver: &mut dyn Driver) -> Result<(), String> {
    adaptive_switch_drain_sharded(driver, crate::fuzz::clock_shards())
}

/// [`adaptive_switch_drain`] with an explicit commit-clock shard count.
///
/// The faulted regression (`tests/fault_adapt.rs`) pins `shards = 1`:
/// its documented violating schedule is a *global-clock* interleaving
/// (step 3 relies on whole-read-set revalidation against the single
/// NOrec sequence word), and the fault must reproduce it regardless of
/// the `SEMTM_CLOCK_SHARDS` re-runs the suite is invoked under. The
/// clean sweeps keep honoring the environment so the sharded drain
/// path gets the same schedule coverage.
pub fn adaptive_switch_drain_sharded(driver: &mut dyn Driver, shards: usize) -> Result<(), String> {
    let stm = check_stm_traced_sharded(Algorithm::SNOrec, shards);
    let x = stm.alloc_cell(5i64);
    let y = stm.alloc_cell(0i64);
    let z = stm.alloc_cell(0i64);
    let out = stm.alloc_cell(0i64);
    let rec = Recorder::new();
    let shared = (&stm, &rec);
    let t0 = |tid: usize, (stm, rec): &Shared<'_>| {
        atomic_recorded(stm, rec, tid, |tx| {
            if tx.cmp(x, CmpOp::Gt, 0)? {
                tx.write(out, 1)?;
            }
            tx.read(z)?;
            tx.read(y).map(|_| ())
        });
    };
    let t1 = |tid: usize, (stm, rec): &Shared<'_>| {
        atomic_recorded(stm, rec, tid, |tx| {
            tx.write(x, -5)?;
            tx.write(y, 1)
        });
    };
    let t2 = |_tid: usize, (stm, _rec): &Shared<'_>| {
        stm.switch_to(Mode::new(Algorithm::STl2))
            .expect("unsharded S-TL2 is always available");
    };
    let o = run_threads(&shared, &[&t0, &t1, &t2], driver, STEP_CAP);
    if o.capped {
        return Err("step cap exceeded".into());
    }
    check_history(
        &rec.attempts(),
        &[(x, 5), (y, 0), (z, 0), (out, 0)],
        &[
            (x, stm.read_now(x)),
            (y, stm.read_now(y)),
            (z, stm.read_now(z)),
            (out, stm.read_now(out)),
        ],
    )
    .map_err(|e| {
        let json = chrome_trace_json(Algorithm::SNOrec, &stm.telemetry().span_events());
        format!(
            "{e}\n{}",
            dump_note("scenario_adaptive_switch_drain", &json)
        )
    })
}

/// Engine hot-swap racing a WAL group-commit flush: the switch must not
/// complete while a committed transaction's batch fsync is still
/// pending (an "acked but not fsynced" commit crossing the epoch).
///
/// `T0` commits one durable increment under `DurabilityMode::Manual`,
/// so its `wait_durable` blocks until the scheduled flusher `T1` runs a
/// flush step. `T2` waits until T0's write-back is heap-visible — i.e.
/// T0 is at worst inside `wait_durable`, its commit applied but not yet
/// acked — then switches engine families. The drain barrier must wait
/// out T0's attempt (which retires only once its record is durable),
/// so at the instant the switch publishes, durability covers the
/// commit; and the drain must not deadlock against the flusher it
/// depends on. Both properties are asserted on every explored schedule.
pub fn adaptive_switch_wal_flush(driver: &mut dyn Driver) -> Result<(), String> {
    let (sim, handle) = SimStorage::new();
    let mut cfg = StmConfig::new(Algorithm::SNOrec)
        .heap_words(64)
        .orec_count(16)
        .durability(DurabilityMode::Manual);
    cfg.lock_wait_spins = 8;
    cfg.backoff_min_spins = 1;
    cfg.backoff_max_spins = 2;
    let stm = Stm::with_wal(cfg, Box::new(sim));
    stm.wal().unwrap().track_acks(true);
    let x = stm.alloc_cell(0i64);
    let done = AtomicUsize::new(0);
    let shared = (&stm, &done);
    type WalShared<'a> = (&'a Stm, &'a AtomicUsize);
    let t0 = |_tid: usize, (stm, done): &WalShared<'_>| {
        stm.atomic(|tx| tx.inc(x, 1));
        done.fetch_add(1, Ordering::SeqCst);
    };
    let t1 = |_tid: usize, (stm, done): &WalShared<'_>| {
        let log = stm.wal().unwrap();
        while done.load(Ordering::SeqCst) < 1 {
            log.flush_step().expect("no I/O faults armed");
            semtm_core::sched::spin();
        }
        log.flush_step().expect("final flush");
    };
    let t2 = |_tid: usize, (stm, _done): &WalShared<'_>| {
        // Wait for T0's write-back to become heap-visible: from here on
        // T0 is at worst blocked in `wait_durable` on the flusher.
        while stm.read_now(x) == 0 {
            semtm_core::sched::spin();
        }
        let report = stm
            .switch_to(Mode::new(Algorithm::STl2))
            .expect("unsharded S-TL2 is always available");
        assert!(report.changed());
        // Drained ⇒ T0 retired ⇒ its commit record was fsynced before
        // the new mode published: nothing acked is ever non-durable
        // across a switch.
        let log = stm.wal().unwrap();
        assert!(
            log.durable_seq() >= 1,
            "switch published with T0's group-commit flush still pending"
        );
        assert_eq!(log.acked_seqs(), vec![1]);
    };
    let o = run_threads(&shared, &[&t0, &t1, &t2], driver, STEP_CAP);
    if o.capped {
        return Err("step cap exceeded".into());
    }
    if stm.read_now(x) != 1 {
        return Err(format!("lost durable increment: x = {}", stm.read_now(x)));
    }
    let (written, durable) = handle.watermarks();
    if written != durable {
        return Err(format!(
            "final flush left {written} written vs {durable} durable bytes"
        ));
    }
    Ok(())
}
