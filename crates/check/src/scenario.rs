//! Shared exploration scenarios used both by the clean-run smoke tests
//! and the fault-injection regression tests.
//!
//! Each function runs one two-thread scenario under the given schedule
//! driver, records the full history, and checks it. With the algorithms
//! unmodified every bounded schedule passes; with the corresponding
//! fault armed (`semtm_core::fault`) some schedule commits a
//! non-serializable history and the checker reports it.

use crate::checker::check_history;
use crate::fuzz::check_stm_traced;
use crate::history::{atomic_recorded, Recorder};
use crate::schedule::Driver;
use crate::tracedump::dump_note;
use crate::vthread::run_threads;
use semtm_core::chrome::chrome_trace_json;
use semtm_core::ops::CmpOp;
use semtm_core::{Algorithm, Stm};

const STEP_CAP: usize = 20_000;

type Shared<'a> = (&'a Stm, &'a Recorder);

/// S-NOrec revalidation scenario (the bug: skipping the per-entry
/// semantic re-check during `Validate`).
///
/// `T0: if x > 0 { out = 1 }; read y` vs `T1: x = -5; y = 1` (one tx).
/// If T1 commits between T0's `cmp` and its read of `y`, a correct
/// S-NOrec revalidates `x > 0` (now false) and aborts T0's attempt.
/// Skipping revalidation lets T0 commit having observed both
/// `x > 0 == true` and `y == 1` — no serial order explains that
/// (`[T0,T1]` gives `y = 0`; `[T1,T0]` gives `x > 0` false).
pub fn snorec_revalidation(driver: &mut dyn Driver) -> Result<(), String> {
    let stm = check_stm_traced(Algorithm::SNOrec);
    let x = stm.alloc_cell(5i64);
    let y = stm.alloc_cell(0i64);
    let out = stm.alloc_cell(0i64);
    let rec = Recorder::new();
    let shared = (&stm, &rec);
    let t0 = |tid: usize, (stm, rec): &Shared<'_>| {
        atomic_recorded(stm, rec, tid, |tx| {
            if tx.cmp(x, CmpOp::Gt, 0)? {
                tx.write(out, 1)?;
            }
            tx.read(y).map(|_| ())
        });
    };
    let t1 = |tid: usize, (stm, rec): &Shared<'_>| {
        atomic_recorded(stm, rec, tid, |tx| {
            tx.write(x, -5)?;
            tx.write(y, 1)
        });
    };
    let o = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
    if o.capped {
        return Err("step cap exceeded".into());
    }
    check_history(
        &rec.attempts(),
        &[(x, 5), (y, 0), (out, 0)],
        &[
            (x, stm.read_now(x)),
            (y, stm.read_now(y)),
            (out, stm.read_now(out)),
        ],
    )
    .map_err(|e| {
        // The violating schedule's own flight-recorder timeline, for
        // post-mortem in Perfetto.
        let json = chrome_trace_json(Algorithm::SNOrec, &stm.telemetry().span_events());
        format!("{e}\n{}", dump_note("scenario_snorec_revalidation", &json))
    })
}

/// TL2 commit-time read-validation scenario (the bug: skipping
/// `ValidateReadSet` when the commit timestamp moved).
///
/// `T0: read x; y = 2` vs `T1: x = -5; y = 1` (one tx). If T1 commits
/// inside T0's execution window, a correct TL2 sees x's orec newer than
/// T0's start version at commit and aborts. Skipping read validation
/// publishes `y = 2` while T0 observed the pre-T1 `x = 5` — with final
/// memory `x = -5, y = 2`, neither serial order fits (`[T0,T1]` ends
/// with `y = 1`; `[T1,T0]` means T0 read `x = -5`).
pub fn tl2_read_validation(driver: &mut dyn Driver) -> Result<(), String> {
    let stm = check_stm_traced(Algorithm::Tl2);
    let x = stm.alloc_cell(5i64);
    let y = stm.alloc_cell(0i64);
    let rec = Recorder::new();
    let shared = (&stm, &rec);
    let t0 = |tid: usize, (stm, rec): &Shared<'_>| {
        atomic_recorded(stm, rec, tid, |tx| {
            tx.read(x)?;
            tx.write(y, 2)
        });
    };
    let t1 = |tid: usize, (stm, rec): &Shared<'_>| {
        atomic_recorded(stm, rec, tid, |tx| {
            tx.write(x, -5)?;
            tx.write(y, 1)
        });
    };
    let o = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
    if o.capped {
        return Err("step cap exceeded".into());
    }
    check_history(
        &rec.attempts(),
        &[(x, 5), (y, 0)],
        &[(x, stm.read_now(x)), (y, stm.read_now(y))],
    )
    .map_err(|e| {
        let json = chrome_trace_json(Algorithm::Tl2, &stm.telemetry().span_events());
        format!("{e}\n{}", dump_note("scenario_tl2_read_validation", &json))
    })
}
