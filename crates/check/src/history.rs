//! History recording: every transactional operation of every attempt,
//! globally sequence-stamped, for the opacity checker.
//!
//! The recorder rides inside the transaction bodies run under the
//! deterministic scheduler. Because scheduling is cooperative (exactly
//! one virtual thread runs between schedule points) and no schedule
//! point sits between a commit's write-back and its lock release, the
//! sequence stamps taken right after `Stm::atomic` returns order the
//! attempts exactly as their serialisation-relevant intervals occurred.

use semtm_core::error::Abort;
use semtm_core::ops::CmpOp;
use semtm_core::{Addr, Stm, Tx};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Right-hand side of a recorded compare.
#[derive(Clone, Copy, Debug)]
pub enum CmpRhs {
    /// Address–value form: a constant operand.
    Const(i64),
    /// Address–address form: the other memory slot.
    Slot(Addr),
}

/// One recorded transactional operation, with its global sequence stamp.
#[derive(Clone, Copy, Debug)]
pub enum OpRec {
    /// A plain read observing `val`.
    Read {
        /// Address read.
        addr: Addr,
        /// Value the transaction observed.
        val: i64,
        /// Global stamp.
        seq: u64,
    },
    /// A semantic compare observing outcome `out`.
    Cmp {
        /// Left-hand address.
        a: Addr,
        /// Operator.
        op: CmpOp,
        /// Right-hand side.
        rhs: CmpRhs,
        /// Observed outcome.
        out: bool,
        /// Global stamp.
        seq: u64,
    },
    /// A buffered write of `val` (takes effect at commit).
    Write {
        /// Address written.
        addr: Addr,
        /// Value buffered.
        val: i64,
        /// Global stamp.
        seq: u64,
    },
    /// A deferred increment by `delta` (takes effect at commit).
    Inc {
        /// Address incremented.
        addr: Addr,
        /// Signed delta.
        delta: i64,
        /// Global stamp.
        seq: u64,
    },
}

impl OpRec {
    /// The op's global sequence stamp.
    pub fn seq(&self) -> u64 {
        match *self {
            OpRec::Read { seq, .. }
            | OpRec::Cmp { seq, .. }
            | OpRec::Write { seq, .. }
            | OpRec::Inc { seq, .. } => seq,
        }
    }
}

/// One transaction attempt (committed or aborted) with its op log.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// Virtual thread that ran the attempt.
    pub thread: usize,
    /// Stamp taken when the attempt's body first ran.
    pub begin_seq: u64,
    /// Stamp taken right after the attempt committed or aborted.
    pub end_seq: u64,
    /// Whether the attempt committed.
    pub committed: bool,
    /// Operations in program order.
    pub ops: Vec<OpRec>,
}

/// Collects attempts from all virtual threads of one execution.
#[derive(Default)]
pub struct Recorder {
    seq: AtomicU64,
    attempts: Mutex<Vec<Attempt>>,
}

impl Recorder {
    /// Fresh recorder for one execution.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    fn stamp(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// All recorded attempts, begin-ordered within each thread.
    pub fn attempts(&self) -> Vec<Attempt> {
        let mut a = self.attempts.lock().unwrap().clone();
        a.sort_by_key(|at| at.begin_seq);
        a
    }
}

/// A recording wrapper over [`Tx`]: forwards each operation and logs it.
pub struct RecTx<'a, 'stm> {
    tx: &'a mut Tx<'stm>,
    rec: &'a Recorder,
    ops: &'a RefCell<Vec<OpRec>>,
}

impl RecTx<'_, '_> {
    /// Transactional read.
    pub fn read(&mut self, addr: Addr) -> Result<i64, Abort> {
        let val = self.tx.read(addr)?;
        let seq = self.rec.stamp();
        self.ops.borrow_mut().push(OpRec::Read { addr, val, seq });
        Ok(val)
    }

    /// Transactional buffered write.
    pub fn write(&mut self, addr: Addr, val: i64) -> Result<(), Abort> {
        self.tx.write(addr, val)?;
        let seq = self.rec.stamp();
        self.ops.borrow_mut().push(OpRec::Write { addr, val, seq });
        Ok(())
    }

    /// Semantic increment.
    pub fn inc(&mut self, addr: Addr, delta: i64) -> Result<(), Abort> {
        self.tx.inc(addr, delta)?;
        let seq = self.rec.stamp();
        self.ops.borrow_mut().push(OpRec::Inc { addr, delta, seq });
        Ok(())
    }

    /// Semantic compare, address–value form.
    pub fn cmp(&mut self, addr: Addr, op: CmpOp, operand: i64) -> Result<bool, Abort> {
        let out = self.tx.cmp(addr, op, operand)?;
        let seq = self.rec.stamp();
        self.ops.borrow_mut().push(OpRec::Cmp {
            a: addr,
            op,
            rhs: CmpRhs::Const(operand),
            out,
            seq,
        });
        Ok(out)
    }

    /// Semantic compare, address–address form.
    pub fn cmp_addr(&mut self, a: Addr, op: CmpOp, b: Addr) -> Result<bool, Abort> {
        let out = self.tx.cmp_addr(a, op, b)?;
        let seq = self.rec.stamp();
        self.ops.borrow_mut().push(OpRec::Cmp {
            a,
            op,
            rhs: CmpRhs::Slot(b),
            out,
            seq,
        });
        Ok(out)
    }
}

/// Run one transaction under `stm` while recording every attempt
/// (including aborted ones) into `rec`.
///
/// The body may run multiple times (the runner retries aborted
/// attempts); each entry of the closure opens a new [`Attempt`].
pub fn atomic_recorded<T>(
    stm: &Stm,
    rec: &Recorder,
    thread: usize,
    mut body: impl FnMut(&mut RecTx<'_, '_>) -> Result<T, Abort>,
) -> T {
    let attempts: RefCell<Vec<Attempt>> = RefCell::new(Vec::new());
    let ops: RefCell<Vec<OpRec>> = RefCell::new(Vec::new());
    let result = stm.atomic(|tx| {
        // A new run of the closure = the previous attempt aborted.
        {
            let mut attempts = attempts.borrow_mut();
            if let Some(prev) = attempts.last_mut() {
                prev.end_seq = rec.stamp();
                prev.ops = std::mem::take(&mut *ops.borrow_mut());
            }
            attempts.push(Attempt {
                thread,
                begin_seq: rec.stamp(),
                end_seq: 0,
                committed: false,
                ops: Vec::new(),
            });
        }
        let mut rtx = RecTx { tx, rec, ops: &ops };
        body(&mut rtx)
    });
    let mut attempts = attempts.into_inner();
    if let Some(last) = attempts.last_mut() {
        last.end_seq = rec.stamp();
        last.committed = true;
        last.ops = ops.into_inner();
    }
    rec.attempts.lock().unwrap().extend(attempts);
    result
}
