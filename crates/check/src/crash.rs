//! Kill-at-any-schedule-point crash-recovery sweeps.
//!
//! The deterministic scheduler already parks every virtual thread at
//! every synchronization edge of the STM algorithms — and a schedule
//! point *is* a crash point: killing the process there would preserve
//! exactly the log storage state (bytes written to the OS, bytes
//! durable past fsync) at that instant. Because the simulated log
//! storage is append-only, the byte stream at any point during the run
//! is a **prefix** of the final stream, so one execution yields the
//! crash images of *all* of its kill points: a [`Driver`] wrapper
//! samples the `(written, durable, acked)` watermarks at every
//! scheduling decision (when every vthread is parked, i.e. at a
//! consistent cut of the virtual schedule), and after the run each
//! distinct sampled state is recovered and checked.
//!
//! Two properties are checked for every kill point, under multiple
//! tail policies (durable-only = power loss; full-written = process
//! kill; random torn cut in between):
//!
//! * **Prefix durability** — every commit *acked* by that point (its
//!   [`wait_durable`](semtm_core::CommitLog::wait_durable) returned)
//!   is reconstructed by recovery;
//! * **Atomicity / consistency** — replaying the recovered prefix into
//!   a fresh heap yields a state satisfying the kernel's invariant
//!   (Bank conservation + non-negativity; slot-census equality for the
//!   hashtable-style kernel), i.e. no partially applied transaction and
//!   no causally inconsistent cut is ever visible after recovery.
//!
//! The flusher runs as a **scheduled virtual thread** (the log is in
//! [`DurabilityMode::Manual`]), so batch formation, the append, and the
//! fsync all interleave with committers under the explored schedule —
//! the group-commit protocol itself is inside the sweep, not mocked.

use crate::schedule::{Decision, Driver, RandomDriver};
use crate::vthread::run_threads;
use semtm_core::util::SplitMix64;
use semtm_core::wal::{read_records, replay, DurabilityMode, SimHandle, SimStorage};
use semtm_core::{Addr, Algorithm, CommitLog, Stm, StmConfig};
use semtm_workloads::bank::{Bank, BankConfig};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Probability (%) that the random driver preempts a runnable thread.
const SWITCH_PCT: u32 = 40;
/// Per-execution scheduling-step cap (livelock backstop).
const STEP_CAP: usize = 20_000;

/// Which workload kernel the crash scenario runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashKernel {
    /// Guarded transfers over a small account array; recovery invariant:
    /// money conservation and non-negative balances.
    Bank,
    /// Open-addressing-style slot flips with a size counter (the
    /// hashtable atomicity skeleton); recovery invariant: the counter
    /// equals the number of occupied slots — a single torn transaction
    /// breaks it immediately.
    Slots,
}

impl CrashKernel {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CrashKernel::Bank => "bank",
            CrashKernel::Slots => "slots",
        }
    }
}

/// One crash sweep's shape: engine, kernel, and exploration budget.
#[derive(Clone, Debug)]
pub struct CrashConfig {
    /// The STM algorithm under test.
    pub algorithm: Algorithm,
    /// Commit-clock shards (`> 1` selects the ScNorec engine for the
    /// NOrec family).
    pub clock_shards: usize,
    /// The workload kernel.
    pub kernel: CrashKernel,
    /// Concurrent committer vthreads (the flusher vthread is extra).
    pub workers: usize,
    /// Workload transactions per worker per execution.
    pub ops_per_worker: usize,
    /// Number of random-schedule executions (each contributes every one
    /// of its kill points).
    pub executions: usize,
    /// Base seed for the schedule walks.
    pub base_seed: u64,
}

impl CrashConfig {
    /// A small default sweep for `algorithm` over `kernel`.
    pub fn new(algorithm: Algorithm, kernel: CrashKernel) -> CrashConfig {
        CrashConfig {
            algorithm,
            clock_shards: 1,
            kernel,
            workers: 2,
            ops_per_worker: 3,
            executions: 6,
            base_seed: 0x00DD_BA11,
        }
    }

    fn stm_config(&self) -> StmConfig {
        let sharded = self.clock_shards > 1;
        let mut cfg = StmConfig::new(self.algorithm)
            .heap_words(1 << 11)
            .orec_count(16)
            .clock_shards(self.clock_shards)
            .padded_alloc(sharded)
            .durability(DurabilityMode::Manual);
        cfg.lock_wait_spins = 8;
        cfg.backoff_min_spins = 1;
        cfg.backoff_max_spins = 2;
        cfg
    }
}

/// Aggregated result of one crash sweep (all executions, all kill
/// points). The sweep itself never panics on a property violation — it
/// counts them, so tests can assert `lost_acked == 0 && inconsistent
/// == 0` and print the whole report on failure.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashReport {
    /// Schedule executions run.
    pub executions: usize,
    /// Distinct kill-point storage states recovered.
    pub kill_points: usize,
    /// Total recovery checks (kill points × tail policies).
    pub recoveries: usize,
    /// Commits acked across all executions.
    pub acked_commits: usize,
    /// Records present in the final logs across all executions.
    pub logged_commits: usize,
    /// Property violations: an acked commit missing after recovery.
    pub lost_acked: usize,
    /// Property violations: recovered state failed the kernel invariant
    /// (partial transaction or causally inconsistent prefix).
    pub inconsistent: usize,
}

/// The hashtable-style slot kernel: `slots` occupancy words plus a
/// `size` counter that must always census-match them.
struct Slots {
    base: Addr,
    size: Addr,
    count: usize,
}

impl Slots {
    const SLOTS: usize = 8;

    fn new(stm: &Stm) -> Slots {
        let base = stm.alloc_array(Slots::SLOTS, 0i64);
        let size = stm.alloc_cell(0i64);
        Slots {
            base,
            size,
            count: Slots::SLOTS,
        }
    }

    /// Flip one slot and adjust the counter — both or neither must
    /// survive recovery.
    fn flip_tx(&self, stm: &Stm, rng: &mut SplitMix64) {
        let i = rng.index(self.count);
        let slot = self.base.offset(i);
        stm.atomic(|tx| {
            if tx.eq(slot, 0)? {
                tx.write(slot, 1)?;
                tx.inc(self.size, 1)?;
            } else {
                tx.write(slot, 0)?;
                tx.dec(self.size, 1)?;
            }
            Ok(())
        });
    }

    fn verify(&self, stm: &Stm) -> Result<(), String> {
        let mut occupied = 0i64;
        for i in 0..self.count {
            let v = stm.read_now(self.base.offset(i));
            if v != 0 && v != 1 {
                return Err(format!("slot {i} holds {v}, expected 0/1"));
            }
            occupied += v;
        }
        let size = stm.read_now(self.size);
        if size != occupied {
            return Err(format!("size counter {size} != occupied slots {occupied}"));
        }
        Ok(())
    }
}

/// The workload behind one scenario, bound to a specific [`Stm`].
enum Kernel {
    Bank(Bank),
    Slots(Slots),
}

impl Kernel {
    fn bank_config(sharded: bool) -> BankConfig {
        BankConfig {
            accounts: 8,
            initial_balance: 50,
            transfers_per_tx: 2,
            max_amount: 20,
            audit_per_mille: 100,
            skew_accounts: 0,
            padded: sharded,
        }
    }

    /// Build the kernel on `stm`. Allocation order is deterministic, so
    /// building it again on a fresh `Stm` with the same config yields
    /// identical addresses — which is what lets recovery replay a log
    /// into a freshly re-set-up heap.
    fn setup(cfg: &CrashConfig, stm: &Stm) -> Kernel {
        match cfg.kernel {
            CrashKernel::Bank => {
                Kernel::Bank(Bank::new(stm, Kernel::bank_config(cfg.clock_shards > 1)))
            }
            CrashKernel::Slots => Kernel::Slots(Slots::new(stm)),
        }
    }

    fn run_one(&self, stm: &Stm, rng: &mut SplitMix64) {
        match self {
            Kernel::Bank(b) => {
                b.transfer_tx(stm, rng);
            }
            Kernel::Slots(s) => s.flip_tx(stm, rng),
        }
    }

    fn verify(&self, stm: &Stm) -> Result<(), String> {
        match self {
            Kernel::Bank(b) => b.verify(stm),
            Kernel::Slots(s) => s.verify(stm),
        }
    }
}

/// One sampled kill point: `(written bytes, durable bytes, acked
/// commits)` at a scheduling decision.
type KillPoint = (usize, usize, usize);

/// One execution's yield: sampled kill points, the final acked
/// sequence list, and the final log bytes.
type ExecutionTrace = (Vec<KillPoint>, Vec<u64>, Vec<u8>);

/// A [`Driver`] wrapper sampling the crash-relevant storage state at
/// every scheduling decision. When `choose` runs, every virtual thread
/// is parked at a schedule point, so the sample is a consistent cut of
/// the virtual schedule — exactly the state a kill at that point would
/// leave behind.
struct CrashObserver<'a> {
    inner: &'a mut dyn Driver,
    sim: SimHandle,
    log: &'a CommitLog,
    samples: Vec<KillPoint>,
}

impl Driver for CrashObserver<'_> {
    fn choose(&mut self, d: Decision<'_>) -> usize {
        let (written, durable) = self.sim.watermarks();
        self.samples
            .push((written, durable, self.log.acked_count()));
        self.inner.choose(d)
    }
}

/// Shared state handed to the vthread bodies.
struct Shared {
    stm: Stm,
    kernel: Kernel,
    done: AtomicUsize,
    workers: usize,
    ops_per_worker: usize,
    body_seed: u64,
}

/// Run one scheduled execution; returns the sampled kill points, the
/// final acked sequence list, and the final log bytes.
fn run_once(cfg: &CrashConfig, driver: &mut dyn Driver) -> Result<ExecutionTrace, String> {
    let (sim, handle) = SimStorage::new();
    let stm = Stm::with_wal(cfg.stm_config(), Box::new(sim));
    stm.wal().unwrap().track_acks(true);
    let kernel = Kernel::setup(cfg, &stm);
    let shared = Shared {
        stm,
        kernel,
        done: AtomicUsize::new(0),
        workers: cfg.workers,
        ops_per_worker: cfg.ops_per_worker,
        body_seed: cfg.base_seed,
    };

    let worker = |tid: usize, s: &Shared| {
        let mut rng = SplitMix64::new(s.body_seed ^ (0xA5A5 + tid as u64 * 0x9E37_79B9));
        for _ in 0..s.ops_per_worker {
            s.kernel.run_one(&s.stm, &mut rng);
        }
        s.done.fetch_add(1, Ordering::SeqCst);
    };
    // The group-commit flusher as a scheduled vthread: drain/fsync steps
    // interleave with committers under the explored schedule. Workers
    // block in `wait_durable` until their batch lands, so the flusher
    // must keep stepping until every worker has finished.
    let flusher = |_tid: usize, s: &Shared| {
        let log = s.stm.wal().unwrap();
        while s.done.load(Ordering::SeqCst) < s.workers {
            log.flush_step()
                .expect("no I/O faults armed in crash sweeps");
            semtm_core::sched::spin();
        }
        log.flush_step().expect("final flush");
    };

    let mut bodies: Vec<crate::vthread::Body<'_, Shared>> = Vec::new();
    for _ in 0..cfg.workers {
        bodies.push(&worker);
    }
    bodies.push(&flusher);

    let (samples, outcome) = {
        let mut obs = CrashObserver {
            inner: driver,
            sim: handle.clone(),
            log: shared.stm.wal().unwrap(),
            samples: Vec::new(),
        };
        let outcome = run_threads(&shared, &bodies, &mut obs, STEP_CAP);
        (obs.samples, outcome)
    };
    if outcome.capped {
        return Err(format!(
            "execution hit the {STEP_CAP}-step cap (likely livelock)"
        ));
    }

    // The live (uncrashed) run must itself be consistent.
    shared.kernel.verify(&shared.stm)?;
    let (written, durable) = handle.watermarks();
    if written != durable {
        return Err(format!(
            "final flush left {written} written vs {durable} durable bytes"
        ));
    }
    let mut samples = samples;
    samples.push((written, durable, shared.stm.wal().unwrap().acked_count()));
    let acks = shared.stm.wal().unwrap().acked_seqs();
    Ok((samples, acks, handle.bytes()))
}

/// Recover `prefix` into a fresh re-setup of the scenario and check
/// both crash properties. Returns `(lost_acked, inconsistent)` as 0/1
/// counts and accumulates nothing itself.
fn check_recovery(
    cfg: &CrashConfig,
    prefix: &[u8],
    acked: &[u64],
    expect_clean: bool,
) -> Result<(usize, usize), String> {
    let (records, _consumed, stop) = read_records(prefix);
    if expect_clean && stop != semtm_core::wal::StopReason::CleanEnd {
        return Err(format!(
            "durable/written watermark is not a record boundary: {stop:?}"
        ));
    }
    for (i, r) in records.iter().enumerate() {
        if r.seq != (i + 1) as u64 {
            return Err(format!("recovered seq {} at position {i}", r.seq));
        }
    }
    let last_seq = records.len() as u64;

    let mut lost = 0usize;
    if acked.iter().any(|&s| s > last_seq) {
        lost = 1;
    }

    // Fresh runtime, identical deterministic setup, then replay.
    let mut plain = cfg.stm_config();
    // Recovery runs on a plain (non-durable) runtime: same layout knobs,
    // no log.
    plain.durability = DurabilityMode::Manual;
    let stm = Stm::new(plain);
    let kernel = Kernel::setup(cfg, &stm);
    replay(prefix, stm.heap());
    let inconsistent = match kernel.verify(&stm) {
        Ok(()) => 0,
        Err(_) => 1,
    };
    Ok((lost, inconsistent))
}

/// Run the full sweep described by `cfg`: every execution contributes
/// every distinct kill-point storage state, each recovered under three
/// tail policies (durable-only, full-written, random torn cut).
///
/// Returns `Err` only on harness-level failures (step cap, malformed
/// watermarks); property violations are *counted* in the report.
pub fn sweep(cfg: &CrashConfig) -> Result<CrashReport, String> {
    let mut report = CrashReport::default();
    let mut seeder = SplitMix64::new(cfg.base_seed);
    for exec in 0..cfg.executions {
        let seed = seeder.next_u64();
        let mut driver = RandomDriver::new(seed, SWITCH_PCT);
        let (samples, acks, bytes) = run_once(cfg, &mut driver)
            .map_err(|e| format!("{} execution {exec} (seed {seed:#x}): {e}", cfg.algorithm))?;
        report.executions += 1;
        report.acked_commits += acks.len();
        let (final_records, _, _) = read_records(&bytes);
        report.logged_commits += final_records.len();

        let distinct: BTreeSet<KillPoint> = samples.into_iter().collect();
        let mut torn_rng = SplitMix64::new(seed ^ 0x7EAA);
        for (written, durable, acked_count) in distinct {
            report.kill_points += 1;
            let acked = &acks[..acked_count.min(acks.len())];
            // Power loss: only the fsynced prefix survives.
            // Process kill: everything handed to the OS survives.
            // Torn tail: a random cut in between (never below the
            // durable watermark — fsync'd bytes cannot tear).
            let torn = durable + torn_rng.index(written - durable + 1);
            for (cut, expect_clean) in [(durable, true), (written, true), (torn, false)] {
                report.recoveries += 1;
                let (lost, inconsistent) = check_recovery(cfg, &bytes[..cut], acked, expect_clean)
                    .map_err(|e| {
                        format!(
                            "{} execution {exec} (seed {seed:#x}) kill point \
                             (w={written}, d={durable}, k={acked_count}) cut {cut}: {e}",
                            cfg.algorithm
                        )
                    })?;
                report.lost_acked += lost;
                report.inconsistent += inconsistent;
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_engine_sweep_reports_clean() {
        let mut cfg = CrashConfig::new(Algorithm::SNOrec, CrashKernel::Slots);
        cfg.executions = 2;
        let report = sweep(&cfg).expect("sweep must run");
        assert!(report.kill_points > 0, "{report:?}");
        assert!(report.acked_commits > 0, "{report:?}");
        assert_eq!(report.lost_acked, 0, "{report:?}");
        assert_eq!(report.inconsistent, 0, "{report:?}");
    }

    #[test]
    fn detector_flags_a_lost_acked_commit() {
        // Cut the log below what was acked: prefix durability must trip.
        let cfg = CrashConfig::new(Algorithm::NOrec, CrashKernel::Slots);
        let mut driver = RandomDriver::new(7, SWITCH_PCT);
        let (_samples, acks, bytes) = run_once(&cfg, &mut driver).unwrap();
        assert!(!acks.is_empty());
        let (lost, _) = check_recovery(&cfg, &[], &acks, true).unwrap();
        assert_eq!(lost, 1, "empty log cannot contain acked commits");
        let (lost, _) = check_recovery(&cfg, &bytes, &acks, true).unwrap();
        assert_eq!(lost, 0, "full log contains every acked commit");
    }

    #[test]
    fn detector_flags_an_inconsistent_heap() {
        // A synthetic half-transaction: bump the slots size counter
        // without occupying a slot. The invariant must fail.
        let cfg = CrashConfig::new(Algorithm::NOrec, CrashKernel::Slots);
        let stm = Stm::new(cfg.stm_config());
        let kernel = Kernel::setup(&cfg, &stm);
        match &kernel {
            Kernel::Slots(s) => stm.write_now(s.size, 1),
            Kernel::Bank(_) => unreachable!(),
        }
        assert!(kernel.verify(&stm).is_err());
    }
}
