//! End-to-end tests of the compiler substrate: parse → passes →
//! transactional execution, plus property tests that the passes are
//! semantics-preserving on arbitrary straight-line transactional
//! programs. The property tier runs deterministically (seeded
//! `SplitMix64`); the original proptest suite is gated behind the
//! off-by-default `registry-deps` feature.

use semtm::core::util::SplitMix64;
use semtm::ir::ir::{BinOp, Block, Function, Inst, Operand};
use semtm::ir::{parse_function, run_tm_passes, Interp};
use semtm::{Algorithm, Stm, StmConfig};

fn stm(alg: Algorithm) -> Stm {
    Stm::new(StmConfig::new(alg).heap_words(1 << 10).orec_count(256))
}

#[test]
fn parse_pass_execute_roundtrip() {
    // A queue-dequeue-flavoured kernel: the address-address emptiness
    // check and the cursor bump both get discovered by tm_mark.
    let src = r"
; dequeue(head_addr, tail_addr, buf_base, mask) -> item or -1
func dequeue(4) {
entry:
  tmbegin
  r4 = tmload r0
  r5 = tmload r1
  r6 = cmp.eq r4, r5
  condbr r6, empty, take
take:
  r7 = tmload r0
  r8 = and r7, r3
  r9 = add r2, r8
  r10 = tmload r9
  r11 = tmload r0
  r12 = add r11, 1
  tmstore r0, r12
  tmend
  ret r10
empty:
  tmend
  ret -1
}
";
    let mut f = parse_function(src).unwrap();
    let report = run_tm_passes(&mut f);
    assert_eq!(report.s2r, 1, "head/tail emptiness check becomes _ITM_S2R");
    assert_eq!(report.sw, 1, "cursor bump becomes _ITM_SW");

    for alg in Algorithm::ALL {
        let s = stm(alg);
        let head = s.alloc_cell(0i64);
        let tail = s.alloc_cell(2i64);
        let buf = s.alloc_array(4, 0i64);
        s.write_now(buf.offset(0), 70);
        s.write_now(buf.offset(1), 71);
        let interp = Interp::new(&s);
        let args = vec![
            head.index() as i64,
            tail.index() as i64,
            buf.index() as i64,
            3,
        ];
        assert_eq!(interp.execute(&f, &args).unwrap(), Some(70), "{alg}");
        assert_eq!(interp.execute(&f, &args).unwrap(), Some(71), "{alg}");
        assert_eq!(interp.execute(&f, &args).unwrap(), Some(-1), "{alg}: empty");
        assert_eq!(s.read_now(head), 2, "{alg}");
    }
}

/// Build a straight-line transactional function from a random op list:
/// loads into fresh registers, stores/arithmetic over them, comparisons
/// — exactly the pattern soup tm_mark has to be conservative about.
#[derive(Clone, Debug)]
enum SOp {
    Load(usize),
    StoreImm(usize, i64),
    StoreLoadPlus(usize, i64),         // *a = *a + k  (inc pattern)
    StoreLoadMinus(usize, i64),        // *a = *a - k  (dec pattern)
    StoreCrossPlus(usize, usize, i64), // *a = *b + k (NOT an inc)
    CmpImm(usize, i64),
}

const CELLS: usize = 3;

fn random_sop(rng: &mut SplitMix64) -> SOp {
    let c = rng.index(CELLS);
    let k = rng.below(18) as i64 - 9;
    match rng.below(6) {
        0 => SOp::Load(c),
        1 => SOp::StoreImm(c, k),
        2 => SOp::StoreLoadPlus(c, k),
        3 => SOp::StoreLoadMinus(c, k),
        4 => SOp::StoreCrossPlus(c, rng.index(CELLS), k),
        _ => SOp::CmpImm(c, k),
    }
}

fn build_function(ops: &[SOp]) -> Function {
    // args r0..r2 are the three cell addresses; results accumulate into
    // a sum register so nothing is trivially dead unless intended.
    let mut insts = vec![Inst::TmBegin];
    let mut next = CELLS as u32;
    let mut fresh = || {
        let r = next;
        next += 1;
        r
    };
    let acc = fresh();
    insts.push(Inst::Mov {
        dst: acc,
        src: Operand::Imm(0),
    });
    for op in ops {
        match *op {
            SOp::Load(c) => {
                let r = fresh();
                insts.push(Inst::TmLoad {
                    dst: r,
                    addr: Operand::Reg(c as u32),
                });
                insts.push(Inst::Bin {
                    op: BinOp::Add,
                    dst: acc,
                    a: Operand::Reg(acc),
                    b: Operand::Reg(r),
                });
            }
            SOp::StoreImm(c, k) => insts.push(Inst::TmStore {
                addr: Operand::Reg(c as u32),
                val: Operand::Imm(k),
            }),
            SOp::StoreLoadPlus(c, k) | SOp::StoreLoadMinus(c, k) => {
                let r = fresh();
                let sum = fresh();
                insts.push(Inst::TmLoad {
                    dst: r,
                    addr: Operand::Reg(c as u32),
                });
                insts.push(Inst::Bin {
                    op: if matches!(op, SOp::StoreLoadPlus(..)) {
                        BinOp::Add
                    } else {
                        BinOp::Sub
                    },
                    dst: sum,
                    a: Operand::Reg(r),
                    b: Operand::Imm(k),
                });
                insts.push(Inst::TmStore {
                    addr: Operand::Reg(c as u32),
                    val: Operand::Reg(sum),
                });
            }
            SOp::StoreCrossPlus(a, b, k) => {
                let r = fresh();
                let sum = fresh();
                insts.push(Inst::TmLoad {
                    dst: r,
                    addr: Operand::Reg(b as u32),
                });
                insts.push(Inst::Bin {
                    op: BinOp::Add,
                    dst: sum,
                    a: Operand::Reg(r),
                    b: Operand::Imm(k),
                });
                insts.push(Inst::TmStore {
                    addr: Operand::Reg(a as u32),
                    val: Operand::Reg(sum),
                });
            }
            SOp::CmpImm(c, k) => {
                let r = fresh();
                let flag = fresh();
                insts.push(Inst::TmLoad {
                    dst: r,
                    addr: Operand::Reg(c as u32),
                });
                insts.push(Inst::Cmp {
                    op: semtm::CmpOp::Gt,
                    dst: flag,
                    a: Operand::Reg(r),
                    b: Operand::Imm(k),
                });
                insts.push(Inst::Bin {
                    op: BinOp::Add,
                    dst: acc,
                    a: Operand::Reg(acc),
                    b: Operand::Reg(flag),
                });
            }
        }
    }
    insts.push(Inst::TmEnd);
    insts.push(Inst::Ret {
        val: Some(Operand::Reg(acc)),
    });
    let f = Function {
        name: "prop".into(),
        num_args: CELLS as u32,
        num_regs: next,
        blocks: vec![Block {
            label: "entry".into(),
            insts,
        }],
    };
    f.validate().expect("generated IR is valid");
    f
}

fn run_program(f: &Function, init: [i64; CELLS], alg: Algorithm) -> (Option<i64>, Vec<i64>) {
    let s = stm(alg);
    let cells: Vec<_> = init.iter().map(|&v| s.alloc_cell(v)).collect();
    let args: Vec<i64> = cells.iter().map(|a| a.index() as i64).collect();
    let interp = Interp::new(&s);
    let ret = interp.execute(f, &args).expect("program executes");
    let finals = cells.iter().map(|a| s.read_now(*a)).collect();
    (ret, finals)
}

/// tm_mark + tm_optimize never change observable behaviour: same
/// return value, same final memory, on both the delegating and the
/// semantic algorithm. Deterministic port of the proptest case.
#[test]
fn passes_preserve_semantics_deterministic() {
    let mut rng = SplitMix64::new(0x1AC5);
    for _ in 0..48 {
        let init: [i64; CELLS] = std::array::from_fn(|_| rng.below(40) as i64 - 20);
        let ops: Vec<SOp> = (0..1 + rng.index(24))
            .map(|_| random_sop(&mut rng))
            .collect();
        let plain = build_function(&ops);
        let mut passed = plain.clone();
        run_tm_passes(&mut passed);
        let baseline = run_program(&plain, init, Algorithm::NOrec);
        for alg in Algorithm::ALL {
            assert_eq!(run_program(&plain, init, alg), baseline, "{alg}: plain");
            assert_eq!(run_program(&passed, init, alg), baseline, "{alg}: passed");
        }
    }
}

/// The passes never *increase* the barrier count.
#[test]
fn passes_never_add_barriers_deterministic() {
    let mut rng = SplitMix64::new(0xBA44);
    for _ in 0..48 {
        let ops: Vec<SOp> = (0..1 + rng.index(24))
            .map(|_| random_sop(&mut rng))
            .collect();
        let plain = build_function(&ops);
        let mut passed = plain.clone();
        run_tm_passes(&mut passed);
        assert!(passed.barrier_count() <= plain.barrier_count());
    }
}

/// The original proptest tier. Enable with the (off-by-default)
/// `registry-deps` feature after uncommenting the proptest
/// dev-dependency in Cargo.toml.
#[cfg(feature = "registry-deps")]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn sop_strategy() -> impl Strategy<Value = SOp> {
        let cell = 0..CELLS;
        let k = -9i64..9;
        prop_oneof![
            cell.clone().prop_map(SOp::Load),
            (cell.clone(), k.clone()).prop_map(|(c, k)| SOp::StoreImm(c, k)),
            (cell.clone(), k.clone()).prop_map(|(c, k)| SOp::StoreLoadPlus(c, k)),
            (cell.clone(), k.clone()).prop_map(|(c, k)| SOp::StoreLoadMinus(c, k)),
            (cell.clone(), cell.clone(), k.clone())
                .prop_map(|(a, b, k)| SOp::StoreCrossPlus(a, b, k)),
            (cell, k).prop_map(|(c, k)| SOp::CmpImm(c, k)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn passes_preserve_semantics(
            init in prop::array::uniform3(-20i64..20),
            ops in prop::collection::vec(sop_strategy(), 1..25),
        ) {
            let plain = build_function(&ops);
            let mut passed = plain.clone();
            run_tm_passes(&mut passed);
            let baseline = run_program(&plain, init, Algorithm::NOrec);
            for alg in Algorithm::ALL {
                prop_assert_eq!(run_program(&plain, init, alg), baseline.clone());
                prop_assert_eq!(run_program(&passed, init, alg), baseline.clone());
            }
        }

        #[test]
        fn passes_never_add_barriers(
            ops in prop::collection::vec(sop_strategy(), 1..25),
        ) {
            let plain = build_function(&ops);
            let mut passed = plain.clone();
            run_tm_passes(&mut passed);
            prop_assert!(passed.barrier_count() <= plain.barrier_count());
        }
    }
}
