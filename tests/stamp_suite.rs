//! STAMP suite smoke-and-verify: every ported application runs on every
//! algorithm with multiple threads, and its internal invariants are
//! asserted (each `run` helper verifies on completion and panics
//! otherwise). This is the cross-crate safety net behind the Figure-1
//! sweeps.

use semtm::workloads::stamp::{genome, intruder, kmeans, labyrinth, ssca2, vacation, yada};
use semtm::{Algorithm, Stm, StmConfig};

fn stm(alg: Algorithm, heap_pow2: u32) -> Stm {
    Stm::new(
        StmConfig::new(alg)
            .heap_words(1 << heap_pow2)
            .orec_count(1 << 10),
    )
}

const THREADS: usize = 3;

#[test]
fn vacation_all_algorithms() {
    for alg in Algorithm::ALL {
        let s = stm(alg, 21);
        let cfg = vacation::VacationConfig {
            relations: 48,
            queries_per_tx: 6,
            customers: 24,
            ..vacation::VacationConfig::default()
        };
        let r = vacation::run(&s, cfg, THREADS, 300, 5);
        assert_eq!(r.total_ops, 300, "{alg}");
        assert!(r.stats.commits >= 300, "{alg}");
    }
}

#[test]
fn kmeans_all_algorithms() {
    for alg in Algorithm::ALL {
        let s = stm(alg, 14);
        let cfg = kmeans::KmeansConfig {
            points: 256,
            features: 8,
            clusters: 4,
            max_iterations: 4,
            ..kmeans::KmeansConfig::default()
        };
        let r = kmeans::run(&s, cfg, THREADS, 5);
        assert!(r.total_ops >= 256, "{alg}");
    }
}

#[test]
fn labyrinth_both_variants_all_algorithms() {
    for variant in [
        labyrinth::Variant::CopyInsideTx,
        labyrinth::Variant::CopyOutsideTx,
    ] {
        for alg in Algorithm::ALL {
            let s = stm(alg, 14);
            let cfg = labyrinth::LabyrinthConfig {
                x: 14,
                y: 14,
                z: 2,
                pairs: 12,
                wall_pct: 8,
                variant,
            };
            let r = labyrinth::run(&s, cfg, THREADS, 7);
            assert_eq!(r.total_ops, 12, "{alg} {variant:?}");
        }
    }
}

#[test]
fn yada_all_algorithms() {
    for alg in Algorithm::ALL {
        let s = stm(alg, 21);
        let cfg = yada::YadaConfig {
            elements: 96,
            ..yada::YadaConfig::default()
        };
        let r = yada::run(&s, cfg, THREADS, 9);
        assert!(r.total_ops > 0, "{alg}: some refinements must happen");
    }
}

#[test]
fn ssca2_all_algorithms() {
    for alg in Algorithm::ALL {
        let s = stm(alg, 18);
        let cfg = ssca2::Ssca2Config {
            vertices: 48,
            edges: 512,
            max_degree: 32,
        };
        let r = ssca2::run(&s, cfg, THREADS, 11);
        assert_eq!(r.total_ops, 512, "{alg}");
    }
}

#[test]
fn genome_all_algorithms() {
    for alg in Algorithm::ALL {
        let s = stm(alg, 18);
        let cfg = genome::GenomeConfig {
            genome_length: 512,
            segment_length: 8,
            segments: 768,
            buckets: 32,
            inserts_per_tx: 4,
        };
        let r = genome::run(&s, cfg, THREADS, 13);
        assert!(r.total_ops > 0, "{alg}");
    }
}

#[test]
fn intruder_all_algorithms() {
    for alg in Algorithm::ALL {
        let s = stm(alg, 18);
        let cfg = intruder::IntruderConfig {
            flows: 48,
            fragments_per_flow: 6,
            attack_per_mille: 200,
        };
        let r = intruder::run(&s, cfg, THREADS, 17);
        assert_eq!(r.total_ops, 48 * 6, "{alg}");
    }
}

/// The headline semantic claim end-to-end: on the compare-heavy
/// workloads, the semantic algorithm's abort rate must not exceed its
/// baseline's under identical contention.
#[test]
fn semantic_abort_rates_never_worse_on_compare_heavy_workloads() {
    use semtm::workloads::hashtable;
    use std::time::Duration;
    let cfg = hashtable::HashtableConfig {
        capacity: 256,
        ..hashtable::HashtableConfig::default()
    };
    for (base, semantic) in [
        (Algorithm::NOrec, Algorithm::SNOrec),
        (Algorithm::Tl2, Algorithm::STl2),
    ] {
        let sb = stm(base, 16);
        let rb = hashtable::run(&sb, cfg, 4, Duration::from_millis(200), 21);
        let ss = stm(semantic, 16);
        let rs = hashtable::run(&ss, cfg, 4, Duration::from_millis(200), 21);
        assert!(
            rs.abort_pct() <= rb.abort_pct() + 5.0,
            "{semantic:?} {:.1}% should undercut {base:?} {:.1}% (5pt slack for scheduling noise)",
            rs.abort_pct(),
            rb.abort_pct()
        );
    }
}
