//! Opacity tests (paper §5): the histories of Algorithms 1, 8 and 9
//! replayed as deterministic interleavings, plus an invariant-pair
//! stress test that no transaction ever observes an inconsistent
//! snapshot (zombie read).
//!
//! Interleavings are produced by committing an inner transaction while
//! an outer `try_atomic` body is suspended between its operations —
//! transactions are plain values in this runtime, so a single thread can
//! interleave them precisely.

use semtm::{Abort, AbortReason, Algorithm, CmpOp, Stm, StmConfig};

fn stm(alg: Algorithm) -> Stm {
    Stm::new(StmConfig::new(alg).heap_words(1 << 12).orec_count(1 << 8))
}

/// Paper Algorithm 1: T1 checks `x > 0 || y > 0`; T2 commits `x++; y--`.
/// At the memory level this is a conflict; at the semantic level it is
/// not. Semantic algorithms must commit T1 first-try; baselines must
/// abort it.
#[test]
fn algorithm1_false_conflict() {
    for alg in Algorithm::ALL {
        let s = stm(alg);
        let x = s.alloc_cell(5i64);
        let y = s.alloc_cell(5i64);
        let out = s.alloc_cell(0i64);
        let r = s.try_atomic(|tx| {
            let cond = tx.cmp(x, CmpOp::Gt, 0)? || tx.cmp(y, CmpOp::Gt, 0)?;
            assert!(cond);
            // T2 commits in the middle of T1.
            s.atomic(|tx2| {
                tx2.inc(x, 1)?;
                tx2.inc(y, -1)
            });
            tx.write(out, 1)?;
            Ok(())
        });
        if alg.is_semantic() {
            assert_eq!(r, Ok(()), "{alg}: semantically there is no conflict");
            assert_eq!(s.read_now(out), 1);
        } else {
            assert!(r.is_err(), "{alg}: value validation must abort T1");
            assert_eq!(s.read_now(out), 0);
        }
    }
}

/// Paper Algorithm 8: opaque *with the new API*. T1: `if x >= 0 { z = y }`,
/// T2: `x = 1; y = 1` in between. The equivalent serialisation T2 -> T1
/// is legal because x was accessed through `cmp` and its return value
/// stays correct.
#[test]
fn algorithm8_opaque_with_semantic_api() {
    // S-NOrec admits the T2 -> T1 serialisation first-try: the read of y
    // revalidates the compare-set (x >= 0 still holds) and extends the
    // snapshot past T2's commit.
    {
        let s = stm(Algorithm::SNOrec);
        let x = s.alloc_cell(0i64);
        let y = s.alloc_cell(0i64);
        let z = s.alloc_cell(-1i64);
        let r = s.try_atomic(|tx| {
            assert!(tx.cmp(x, CmpOp::Gte, 0)?);
            s.atomic(|tx2| {
                tx2.write(x, 1)?;
                tx2.write(y, 1)
            });
            let vy = tx.read(y)?;
            tx.write(z, vy)?;
            Ok(vy)
        });
        assert_eq!(r, Ok(1), "S-NOrec: T2 -> T1 is a legal serialisation");
        assert_eq!(s.read_now(z), 1);
    }
    // S-TL2 is more conservative: plain reads cannot extend the snapshot
    // (only phase-1 compares can), so the first attempt may abort — that
    // is always opaque — and the retry must converge to the same legal
    // outcome.
    {
        let s = stm(Algorithm::STl2);
        let x = s.alloc_cell(0i64);
        let y = s.alloc_cell(0i64);
        let z = s.alloc_cell(-1i64);
        // The interfering commit happens exactly once (a retried body
        // must not re-commit it, or every retry re-invalidates the read).
        let interfered = std::cell::Cell::new(false);
        let vy = s.atomic(|tx| {
            assert!(tx.cmp(x, CmpOp::Gte, 0)?);
            if !interfered.get() {
                interfered.set(true);
                s.atomic(|tx2| {
                    tx2.write(x, 1)?;
                    tx2.write(y, 1)
                });
            }
            let vy = tx.read(y)?;
            tx.write(z, vy)?;
            Ok(vy)
        });
        assert!(interfered.get());
        assert_eq!(vy, 1, "S-TL2: retry converges to the legal outcome");
        assert_eq!(s.read_now(z), 1);
    }
}

/// Paper Algorithm 9: NOT opaque even with the new API. T1 reads y (= 0),
/// T2 commits `x = 1; y = 1`, then T1 compares `x >= 1`. Allowing the
/// compare to see the new x would pair new-x with old-y: the semantic
/// algorithms must abort T1.
#[test]
fn algorithm9_not_opaque_must_abort() {
    for alg in [Algorithm::SNOrec, Algorithm::STl2] {
        let s = stm(alg);
        let x = s.alloc_cell(0i64);
        let y = s.alloc_cell(0i64);
        let z = s.alloc_cell(-1i64);
        let r: Result<(), Abort> = s.try_atomic(|tx| {
            let vy = tx.read(y)?;
            tx.write(z, vy)?;
            s.atomic(|tx2| {
                tx2.write(x, 1)?;
                tx2.write(y, 1)
            });
            // This cmp must not succeed against the *new* x.
            if tx.cmp(x, CmpOp::Gte, 1)? {
                tx.write(z, 1)?;
            }
            Ok(())
        });
        assert!(r.is_err(), "{alg}: history is not opaque; T1 must abort");
        assert_eq!(s.read_now(z), -1, "{alg}: aborted T1 must leave no trace");
    }
}

/// A compare whose *outcome was false* records the inverse relation; a
/// later commit that keeps the inverse true must not abort, one that
/// flips it must.
#[test]
fn false_outcome_records_inverse_relation() {
    for alg in [Algorithm::SNOrec, Algorithm::STl2] {
        let s = stm(alg);
        let x = s.alloc_cell(-5i64);
        let out = s.alloc_cell(0i64);
        // Keeps "x <= 0" true: commit survives.
        let r = s.try_atomic(|tx| {
            assert!(!tx.cmp(x, CmpOp::Gt, 0)?);
            s.atomic(|tx2| tx2.write(x, -9));
            tx.write(out, 1)?;
            Ok(())
        });
        assert_eq!(r, Ok(()), "{alg}");
        // Flips it: abort.
        s.write_now(x, -5);
        let r = s.try_atomic(|tx| {
            assert!(!tx.cmp(x, CmpOp::Gt, 0)?);
            s.atomic(|tx2| tx2.write(x, 9));
            tx.write(out, 2)?;
            Ok(())
        });
        assert!(r.is_err(), "{alg}");
    }
}

/// Deferred increments must serialise with concurrent writers without
/// lost updates, in every pairwise interleaving direction.
#[test]
fn deferred_inc_no_lost_update() {
    for alg in Algorithm::ALL {
        let s = stm(alg);
        let x = s.alloc_cell(100i64);
        let r = s.try_atomic(|tx| {
            tx.inc(x, 7)?;
            s.atomic(|tx2| tx2.inc(x, 11));
            Ok(())
        });
        if alg.is_semantic() {
            // The read half is deferred to commit, under exclusion: no
            // conflict is possible and no update is lost.
            assert_eq!(r, Ok(()), "{alg}: pure-inc transactions never conflict");
            assert_eq!(s.read_now(x), 118, "{alg}: both increments applied");
        } else {
            // Delegated inc = read + write: the concurrent commit
            // invalidates the read, so the first attempt aborts (and a
            // retry would serialise correctly).
            assert!(r.is_err(), "{alg}: delegated inc must conflict");
            assert_eq!(s.read_now(x), 111, "{alg}: only the inner inc landed");
        }
    }
}

/// Zombie-read stress: writers keep `x + y == 0` invariant; readers
/// assert it inside every transaction. Opacity means the assertion can
/// never fire, on any algorithm.
#[test]
fn invariant_pair_never_torn() {
    for alg in Algorithm::ALL {
        let s = stm(alg);
        let x = s.alloc_cell(0i64);
        let y = s.alloc_cell(0i64);
        let iterations = 300;
        std::thread::scope(|scope| {
            for w in 0..2i64 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..iterations {
                        let delta = (i % 13) + w;
                        s.atomic(|tx| {
                            tx.inc(x, delta)?;
                            tx.inc(y, -delta)
                        });
                    }
                });
            }
            for _ in 0..2 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..iterations {
                        let (vx, vy) = s.atomic(|tx| {
                            let vx = tx.read(x)?;
                            let vy = tx.read(y)?;
                            Ok((vx, vy))
                        });
                        assert_eq!(vx + vy, 0, "{alg}: torn snapshot observed");
                    }
                });
            }
        });
        assert_eq!(s.read_now(x) + s.read_now(y), 0, "{alg}");
    }
}

/// The same invariant observed through semantic compares: `x + y == 0`
/// implies `x >= 0 iff y <= 0` whenever both are checked in one
/// transaction.
#[test]
fn invariant_pair_semantic_view_consistent() {
    for alg in [Algorithm::SNOrec, Algorithm::STl2] {
        let s = stm(alg);
        let x = s.alloc_cell(0i64);
        let y = s.alloc_cell(0i64);
        let iterations = 300;
        std::thread::scope(|scope| {
            let s1 = &s;
            scope.spawn(move || {
                for i in 1..=iterations {
                    let sign = if i % 2 == 0 { 1 } else { -1 };
                    s1.atomic(|tx| {
                        tx.write(x, sign * i)?;
                        tx.write(y, -sign * i)
                    });
                }
            });
            for _ in 0..2 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..iterations {
                        let (gx, ly) = s.atomic(|tx| {
                            let gx = tx.cmp(x, CmpOp::Gt, 0)?;
                            let ly = tx.cmp(y, CmpOp::Lt, 0)?;
                            Ok((gx, ly))
                        });
                        assert_eq!(gx, ly, "{alg}: semantic views disagree");
                    }
                });
            }
        });
    }
}

// ---------------------------------------------------------------------
// The same paper histories replayed under the deterministic scheduler:
// instead of hand-weaving one interleaving with a nested commit, every
// bounded-preemption schedule of two real (virtual) threads is explored
// and each execution's recorded history goes through the opacity
// checker. See `crates/check` and DESIGN.md §"Testing strategy".
// ---------------------------------------------------------------------

mod scheduled {
    use semtm::{Algorithm, CmpOp};
    use semtm_check::checker::check_history;
    use semtm_check::fuzz::check_stm;
    use semtm_check::history::{atomic_recorded, OpRec, Recorder};
    use semtm_check::schedule::{explore_exhaustive, ExploreOptions};
    use semtm_check::vthread::run_threads;

    const STEP_CAP: usize = 20_000;

    fn opts(max_preemptions: u32) -> ExploreOptions {
        ExploreOptions {
            max_preemptions,
            max_executions: 0,
            step_cap: STEP_CAP,
        }
    }

    /// Paper Algorithm 1 under the scheduler: T0 checks `x > 0 || y > 0`
    /// and writes `out`, T1 commits `x++; y--`. Semantic algorithms must
    /// exhibit a schedule where T1 commits *inside* T0's window and T0
    /// still commits first-try; baselines must exhibit aborted attempts.
    /// Every execution's history must pass the opacity checker.
    #[test]
    fn algorithm1_false_conflict_all_schedules() {
        for alg in Algorithm::ALL {
            let mut committed_across_first_try = false;
            let mut saw_abort = false;
            let explored = explore_exhaustive(opts(3), |driver| {
                let stm = check_stm(alg);
                let x = stm.alloc_cell(5);
                let y = stm.alloc_cell(5);
                let out = stm.alloc_cell(0);
                let rec = Recorder::new();
                let shared = (&stm, &rec);
                type Shared<'a> = (&'a semtm::Stm, &'a Recorder);
                let t0 = move |tid: usize, (stm, rec): &Shared<'_>| {
                    atomic_recorded(stm, rec, tid, |tx| {
                        let cond = tx.cmp(x, CmpOp::Gt, 0)? || tx.cmp(y, CmpOp::Gt, 0)?;
                        assert!(cond, "x stays > 0 in every schedule");
                        tx.write(out, 1)
                    });
                };
                let t1 = move |tid: usize, (stm, rec): &Shared<'_>| {
                    atomic_recorded(stm, rec, tid, |tx| {
                        tx.inc(x, 1)?;
                        tx.inc(y, -1)
                    });
                };
                let run = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
                if run.capped {
                    return Err("step cap exceeded".into());
                }
                let attempts = rec.attempts();
                check_history(
                    &attempts,
                    &[(x, 5), (y, 5), (out, 0)],
                    &[
                        (x, stm.read_now(x)),
                        (y, stm.read_now(y)),
                        (out, stm.read_now(out)),
                    ],
                )
                .map_err(|e| format!("{alg}: {e}"))?;
                let t0_attempts: Vec<_> = attempts.iter().filter(|a| a.thread == 0).collect();
                saw_abort |= t0_attempts.iter().any(|a| !a.committed);
                committed_across_first_try |= t0_attempts.len() == 1
                    && t0_attempts[0].committed
                    && attempts.iter().any(|a| {
                        a.thread == 1
                            && a.committed
                            && t0_attempts[0].begin_seq < a.end_seq
                            && a.end_seq < t0_attempts[0].end_seq
                    });
                Ok(())
            });
            assert!(
                explored > 10,
                "{alg}: expected real branching, got {explored}"
            );
            if alg.is_semantic() {
                assert!(
                    committed_across_first_try,
                    "{alg}: some schedule must commit T0 first-try across T1's commit"
                );
            } else {
                assert!(
                    saw_abort,
                    "{alg}: value validation must abort T0 in some schedule"
                );
            }
        }
    }

    /// Paper Algorithm 8 under the scheduler: T0 runs
    /// `if x >= 0 { z = y }`, T1 commits `x = 1; y = 1`. S-NOrec must
    /// exhibit the T1 -> T0 serialisation live (T0 commits first-try
    /// with z = 1 while T1's commit lands inside T0's window); every
    /// execution on every semantic algorithm must be opaque.
    #[test]
    fn algorithm8_opaque_all_schedules() {
        for alg in [Algorithm::SNOrec, Algorithm::STl2] {
            let mut serialised_after_interferer = false;
            explore_exhaustive(opts(3), |driver| {
                let stm = check_stm(alg);
                let x = stm.alloc_cell(0);
                let y = stm.alloc_cell(0);
                let z = stm.alloc_cell(-1);
                let rec = Recorder::new();
                let shared = (&stm, &rec);
                type Shared<'a> = (&'a semtm::Stm, &'a Recorder);
                let t0 = move |tid: usize, (stm, rec): &Shared<'_>| {
                    atomic_recorded(stm, rec, tid, |tx| {
                        assert!(tx.cmp(x, CmpOp::Gte, 0)?, "x only ever grows");
                        let vy = tx.read(y)?;
                        tx.write(z, vy)
                    });
                };
                let t1 = move |tid: usize, (stm, rec): &Shared<'_>| {
                    atomic_recorded(stm, rec, tid, |tx| {
                        tx.write(x, 1)?;
                        tx.write(y, 1)
                    });
                };
                let run = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
                if run.capped {
                    return Err("step cap exceeded".into());
                }
                let attempts = rec.attempts();
                check_history(
                    &attempts,
                    &[(x, 0), (y, 0), (z, -1)],
                    &[
                        (x, stm.read_now(x)),
                        (y, stm.read_now(y)),
                        (z, stm.read_now(z)),
                    ],
                )
                .map_err(|e| format!("{alg}: {e}"))?;
                let t0_attempts: Vec<_> = attempts.iter().filter(|a| a.thread == 0).collect();
                serialised_after_interferer |= t0_attempts.len() == 1
                    && t0_attempts[0].committed
                    && t0_attempts[0]
                        .ops
                        .iter()
                        .any(|op| matches!(op, OpRec::Read { addr, val: 1, .. } if *addr == y))
                    && attempts.iter().any(|a| {
                        a.thread == 1
                            && a.committed
                            && t0_attempts[0].begin_seq < a.end_seq
                            && a.end_seq < t0_attempts[0].end_seq
                    });
                Ok(())
            });
            if alg == Algorithm::SNOrec {
                // Plain reads extend the S-NOrec snapshot, so the
                // T1 -> T0 serialisation happens with no abort at all.
                // S-TL2 is more conservative (only phase-1 compares can
                // extend) and may abort first, which is equally opaque.
                assert!(
                    serialised_after_interferer,
                    "S-NOrec: some schedule must serialise T0 after T1 first-try"
                );
            }
        }
    }

    /// Paper Algorithm 9 under the scheduler: T0 reads y and *then*
    /// compares `x >= 1`; T1 commits `x = 1; y = 1`. Pairing old-y with
    /// new-x is not opaque, so no committed T0 attempt may ever observe
    /// `y == 0` together with `x >= 1` being true — on any algorithm,
    /// in any schedule.
    #[test]
    fn algorithm9_never_pairs_old_y_with_new_x() {
        for alg in Algorithm::ALL {
            explore_exhaustive(opts(3), |driver| {
                let stm = check_stm(alg);
                let x = stm.alloc_cell(0);
                let y = stm.alloc_cell(0);
                let z = stm.alloc_cell(-1);
                let rec = Recorder::new();
                let shared = (&stm, &rec);
                type Shared<'a> = (&'a semtm::Stm, &'a Recorder);
                let t0 = move |tid: usize, (stm, rec): &Shared<'_>| {
                    atomic_recorded(stm, rec, tid, |tx| {
                        let vy = tx.read(y)?;
                        tx.write(z, vy)?;
                        if tx.cmp(x, CmpOp::Gte, 1)? {
                            tx.write(z, 1)?;
                        }
                        Ok(())
                    });
                };
                let t1 = move |tid: usize, (stm, rec): &Shared<'_>| {
                    atomic_recorded(stm, rec, tid, |tx| {
                        tx.write(x, 1)?;
                        tx.write(y, 1)
                    });
                };
                let run = run_threads(&shared, &[&t0, &t1], driver, STEP_CAP);
                if run.capped {
                    return Err("step cap exceeded".into());
                }
                let attempts = rec.attempts();
                for at in attempts.iter().filter(|a| a.thread == 0 && a.committed) {
                    let old_y = at
                        .ops
                        .iter()
                        .any(|op| matches!(op, OpRec::Read { addr, val: 0, .. } if *addr == y));
                    let new_x = at
                        .ops
                        .iter()
                        .any(|op| matches!(op, OpRec::Cmp { a, out: true, .. } if *a == x));
                    if old_y && new_x {
                        return Err(format!("{alg}: committed attempt paired old y with new x"));
                    }
                }
                check_history(
                    &attempts,
                    &[(x, 0), (y, 0), (z, -1)],
                    &[
                        (x, stm.read_now(x)),
                        (y, stm.read_now(y)),
                        (z, stm.read_now(z)),
                    ],
                )
                .map_err(|e| format!("{alg}: {e}"))
            });
        }
    }
}

/// Explicit aborts surface with their reason and leave no effects.
#[test]
fn explicit_abort_reason_preserved() {
    let s = stm(Algorithm::STl2);
    let x = s.alloc_cell(3i64);
    let r: Result<(), Abort> = s.try_atomic(|tx| {
        tx.write(x, 99)?;
        Err(Abort::explicit())
    });
    assert_eq!(r.unwrap_err().reason, AbortReason::Explicit);
    assert_eq!(s.read_now(x), 3, "buffered write must be discarded");
}
