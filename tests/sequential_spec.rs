//! Property-based check of the paper's §5 sequential specification.
//!
//! The paper defines registers with four operations (`read`, `write`,
//! `inc`, `cmp`) and their sequential specification: every `read`
//! returns the latest write plus the interleaving increments, and every
//! `cmp` returns the relation applied to that same value. Single-
//! threaded, every algorithm must be *exactly* this specification.
//!
//! Two tiers share the same checker: an always-on deterministic tier
//! driven by `SplitMix64` (runs offline in tier-1), and the original
//! proptest suite behind the off-by-default `registry-deps` feature.

use semtm::core::util::SplitMix64;
use semtm::{Algorithm, CmpOp, Stm, StmConfig};

#[derive(Clone, Debug)]
enum Op {
    Read(usize),
    Write(usize, i64),
    Inc(usize, i64),
    Cmp(usize, CmpOp, i64),
    CmpAddr(usize, CmpOp, usize),
}

const REGISTERS: usize = 4;

fn random_op(rng: &mut SplitMix64) -> Op {
    let r = rng.index(REGISTERS);
    let v = rng.below(100) as i64 - 50;
    let o = CmpOp::ALL[rng.index(CmpOp::ALL.len())];
    match rng.below(5) {
        0 => Op::Read(r),
        1 => Op::Write(r, v),
        2 => Op::Inc(r, v),
        3 => Op::Cmp(r, o, v),
        _ => Op::CmpAddr(r, o, rng.index(REGISTERS)),
    }
}

fn random_history(rng: &mut SplitMix64) -> ([i64; REGISTERS], Vec<usize>, Vec<Op>) {
    let init: [i64; REGISTERS] = std::array::from_fn(|_| rng.below(40) as i64 - 20);
    let tx_sizes: Vec<usize> = (0..1 + rng.index(5)).map(|_| 1 + rng.index(7)).collect();
    let ops: Vec<Op> = (0..1 + rng.index(39)).map(|_| random_op(rng)).collect();
    (init, tx_sizes, ops)
}

/// The §5 sequential specification, directly.
#[derive(Clone)]
struct Model {
    regs: [i64; REGISTERS],
}

impl Model {
    fn apply(&mut self, op: &Op) -> i64 {
        match *op {
            Op::Read(r) => self.regs[r],
            Op::Write(r, v) => {
                self.regs[r] = v;
                0
            }
            Op::Inc(r, d) => {
                self.regs[r] = self.regs[r].wrapping_add(d);
                0
            }
            Op::Cmp(r, o, v) => o.eval(self.regs[r], v) as i64,
            Op::CmpAddr(a, o, b) => o.eval(self.regs[a], self.regs[b]) as i64,
        }
    }
}

fn check_sequential_spec(alg: Algorithm, init: [i64; REGISTERS], tx_sizes: &[usize], ops: &[Op]) {
    let stm = Stm::new(StmConfig::new(alg).heap_words(256).orec_count(64));
    let addrs: Vec<_> = init.iter().map(|&v| stm.alloc_cell(v)).collect();
    let mut model = Model { regs: init };
    let mut cursor = 0;
    for &size in tx_sizes {
        let chunk: Vec<Op> = ops[cursor..(cursor + size).min(ops.len())].to_vec();
        cursor += chunk.len();
        if chunk.is_empty() {
            break;
        }
        // The whole chunk runs as one transaction; outcomes must match
        // the model applied to the same chunk.
        let expected: Vec<i64> = {
            let mut m = model.clone();
            chunk.iter().map(|op| m.apply(op)).collect()
        };
        let got: Vec<i64> = stm.atomic(|tx| {
            let mut out = Vec::with_capacity(chunk.len());
            for op in &chunk {
                out.push(match *op {
                    Op::Read(r) => tx.read(addrs[r])?,
                    Op::Write(r, v) => {
                        tx.write(addrs[r], v)?;
                        0
                    }
                    Op::Inc(r, d) => {
                        tx.inc(addrs[r], d)?;
                        0
                    }
                    Op::Cmp(r, o, v) => tx.cmp(addrs[r], o, v)? as i64,
                    Op::CmpAddr(a, o, b) => tx.cmp_addr(addrs[a], o, addrs[b])? as i64,
                });
            }
            Ok(out)
        });
        assert_eq!(got, expected, "{alg}: in-transaction outcomes diverge");
        for op in &chunk {
            model.apply(op);
        }
        // Committed memory must equal the model between transactions.
        for (r, addr) in addrs.iter().enumerate() {
            assert_eq!(
                stm.read_now(*addr),
                model.regs[r],
                "{alg}: committed register {r} diverges"
            );
        }
    }
}

/// Deterministic tier: 64 random histories per algorithm, fixed seeds.
#[test]
fn all_algorithms_match_sequential_spec_deterministic() {
    for (i, alg) in Algorithm::ALL.into_iter().enumerate() {
        let mut rng = SplitMix64::new(0x5EC5 + i as u64);
        for _ in 0..64 {
            let (init, tx_sizes, ops) = random_history(&mut rng);
            check_sequential_spec(alg, init, &tx_sizes, &ops);
        }
    }
}

/// The RingSTM-filter fast path (extension A4) must be observation-
/// equivalent to plain S-NOrec on arbitrary histories.
#[test]
fn ring_filters_match_sequential_spec_deterministic() {
    let mut rng = SplitMix64::new(0xF117);
    for _ in 0..64 {
        let (init, tx_sizes, ops) = random_history(&mut rng);
        let stm = Stm::new(
            StmConfig::new(Algorithm::SNOrec)
                .heap_words(256)
                .orec_count(64)
                .norec_ring_filters(true),
        );
        let addrs: Vec<_> = init.iter().map(|&v| stm.alloc_cell(v)).collect();
        let mut model = init;
        let mut cursor = 0;
        for &size in &tx_sizes {
            let chunk: Vec<Op> = ops[cursor..(cursor + size).min(ops.len())].to_vec();
            cursor += chunk.len();
            if chunk.is_empty() {
                break;
            }
            stm.atomic(|tx| {
                for op in &chunk {
                    match *op {
                        Op::Read(r) => {
                            tx.read(addrs[r])?;
                        }
                        Op::Write(r, v) => tx.write(addrs[r], v)?,
                        Op::Inc(r, d) => tx.inc(addrs[r], d)?,
                        Op::Cmp(r, o, v) => {
                            tx.cmp(addrs[r], o, v)?;
                        }
                        Op::CmpAddr(a, o, b) => {
                            tx.cmp_addr(addrs[a], o, addrs[b])?;
                        }
                    }
                }
                Ok(())
            });
            for op in &chunk {
                let mut m = Model { regs: model };
                m.apply(op);
                model = m.regs;
            }
            for (r, addr) in addrs.iter().enumerate() {
                assert_eq!(stm.read_now(*addr), model[r], "register {r}");
            }
        }
    }
}

/// All four algorithms agree with each other on arbitrary single-
/// threaded histories (they implement the same abstraction).
#[test]
fn algorithms_agree_pairwise_deterministic() {
    let mut rng = SplitMix64::new(0xA93E);
    for _ in 0..64 {
        let init: [i64; REGISTERS] = std::array::from_fn(|_| rng.below(40) as i64 - 20);
        let ops: Vec<Op> = (0..1 + rng.index(29))
            .map(|_| random_op(&mut rng))
            .collect();
        let mut finals: Vec<Vec<i64>> = Vec::new();
        for alg in Algorithm::ALL {
            let stm = Stm::new(StmConfig::new(alg).heap_words(256).orec_count(64));
            let addrs: Vec<_> = init.iter().map(|&v| stm.alloc_cell(v)).collect();
            stm.atomic(|tx| {
                for op in &ops {
                    match *op {
                        Op::Read(r) => {
                            tx.read(addrs[r])?;
                        }
                        Op::Write(r, v) => tx.write(addrs[r], v)?,
                        Op::Inc(r, d) => tx.inc(addrs[r], d)?,
                        Op::Cmp(r, o, v) => {
                            tx.cmp(addrs[r], o, v)?;
                        }
                        Op::CmpAddr(a, o, b) => {
                            tx.cmp_addr(addrs[a], o, addrs[b])?;
                        }
                    }
                }
                Ok(())
            });
            finals.push(addrs.iter().map(|a| stm.read_now(*a)).collect());
        }
        for pair in finals.windows(2) {
            assert_eq!(&pair[0], &pair[1]);
        }
    }
}

/// The original proptest tier. Enable with the (off-by-default)
/// `registry-deps` feature after uncommenting the proptest
/// dev-dependency in Cargo.toml.
#[cfg(feature = "registry-deps")]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn op_strategy() -> impl Strategy<Value = Op> {
        let reg = 0..REGISTERS;
        let val = -50i64..50;
        let cmp_op = prop::sample::select(CmpOp::ALL.to_vec());
        prop_oneof![
            reg.clone().prop_map(Op::Read),
            (reg.clone(), val.clone()).prop_map(|(r, v)| Op::Write(r, v)),
            (reg.clone(), val.clone()).prop_map(|(r, v)| Op::Inc(r, v)),
            (reg.clone(), cmp_op.clone(), val).prop_map(|(r, o, v)| Op::Cmp(r, o, v)),
            (reg.clone(), cmp_op, reg).prop_map(|(a, o, b)| Op::CmpAddr(a, o, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn snorec_matches_sequential_spec(
            init in prop::array::uniform4(-20i64..20),
            tx_sizes in prop::collection::vec(1usize..8, 1..6),
            ops in prop::collection::vec(op_strategy(), 1..40),
        ) {
            check_sequential_spec(Algorithm::SNOrec, init, &tx_sizes, &ops);
        }

        #[test]
        fn stl2_matches_sequential_spec(
            init in prop::array::uniform4(-20i64..20),
            tx_sizes in prop::collection::vec(1usize..8, 1..6),
            ops in prop::collection::vec(op_strategy(), 1..40),
        ) {
            check_sequential_spec(Algorithm::STl2, init, &tx_sizes, &ops);
        }

        #[test]
        fn norec_matches_sequential_spec(
            init in prop::array::uniform4(-20i64..20),
            tx_sizes in prop::collection::vec(1usize..8, 1..6),
            ops in prop::collection::vec(op_strategy(), 1..40),
        ) {
            check_sequential_spec(Algorithm::NOrec, init, &tx_sizes, &ops);
        }

        #[test]
        fn tl2_matches_sequential_spec(
            init in prop::array::uniform4(-20i64..20),
            tx_sizes in prop::collection::vec(1usize..8, 1..6),
            ops in prop::collection::vec(op_strategy(), 1..40),
        ) {
            check_sequential_spec(Algorithm::Tl2, init, &tx_sizes, &ops);
        }
    }
}
