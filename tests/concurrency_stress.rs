//! Cross-crate concurrency invariants: every workload's safety property
//! stress-tested on every algorithm through the public facade.
//!
//! Runs are *fixed work* (an exact operation count split across
//! threads), so every assertion is deterministic: no "did at least one
//! op land in the time window" flakiness, and the commit accounting is
//! checked as an exact identity instead of an inequality. Set
//! `SEMTM_STRESS_SECS=<n>` to additionally soak each workload in
//! wall-clock duration mode for `n` seconds (opt-in; never in tier-1).

use semtm::core::util::SplitMix64;
use semtm::workloads::queue::TQueue;
use semtm::workloads::stamp::tmap::TMap;
use semtm::workloads::{bank, hashtable, lru};
use semtm::{Algorithm, Stm, StmConfig, TelemetryLevel};
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Duration;

fn stm(alg: Algorithm) -> Stm {
    Stm::new(StmConfig::new(alg).heap_words(1 << 18).orec_count(1 << 10))
}

/// Opt-in wall-clock soak duration (`SEMTM_STRESS_SECS`), if any.
fn stress_duration() -> Option<Duration> {
    std::env::var("SEMTM_STRESS_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&secs| secs > 0)
        .map(Duration::from_secs)
}

/// The exact accounting identity every fixed run must satisfy: each
/// workload operation is one top-level transaction, so the interval
/// commits equal `total_ops` and the runtime-wide commits additionally
/// include the setup transactions the workload reported.
fn assert_exact_accounting(
    alg: Algorithm,
    s: &Stm,
    r: &semtm::workloads::driver::RunResult,
    expected_ops: u64,
) {
    assert_eq!(r.total_ops, expected_ops, "{alg}");
    assert_eq!(
        r.stats.commits, r.total_ops,
        "{alg}: one commit per workload op"
    );
    assert_eq!(
        s.stats().commits,
        r.total_ops + r.setup_commits,
        "{alg}: runtime commits must equal workload ops + setup commits"
    );
}

#[test]
fn bank_conserves_money_under_contention() {
    for alg in Algorithm::ALL {
        let s = stm(alg);
        let cfg = bank::BankConfig {
            accounts: 8, // few accounts = heavy conflicts
            ..bank::BankConfig::default()
        };
        // bank::run_fixed verifies conservation internally.
        let r = bank::run_fixed(&s, cfg, 4, 600, 1);
        assert_exact_accounting(alg, &s, &r, 600);
        assert_eq!(r.setup_commits, 0, "{alg}: bank seeds non-transactionally");
        if let Some(d) = stress_duration() {
            let soak = stm(alg);
            let r = bank::run(&soak, cfg, 4, d, 1);
            assert!(r.total_ops > 0, "{alg}: soak");
        }
    }
}

#[test]
fn hashtable_supports_heavy_mixed_traffic() {
    for alg in Algorithm::ALL {
        let s = stm(alg);
        let cfg = hashtable::HashtableConfig {
            capacity: 256,
            get_pct: 50, // insert/remove heavy
            ..hashtable::HashtableConfig::default()
        };
        let r = hashtable::run_fixed(&s, cfg, 4, 600, 2);
        assert_exact_accounting(alg, &s, &r, 600);
        if let Some(d) = stress_duration() {
            let soak = stm(alg);
            let r = hashtable::run(&soak, cfg, 4, d, 2);
            assert!(r.total_ops > 0, "{alg}: soak");
        }
    }
}

#[test]
fn lru_integrity_under_contention() {
    for alg in Algorithm::ALL {
        let s = stm(alg);
        let cfg = lru::LruConfig {
            lines: 4,
            ways: 4,
            key_space: 64, // tiny: constant eviction fights
            lookup_pct: 50,
            ..lru::LruConfig::default()
        };
        let r = lru::run_fixed(&s, cfg, 4, 600, 3);
        assert_exact_accounting(alg, &s, &r, 600);
        assert_eq!(
            r.setup_commits, 16,
            "{alg}: warm-up commits one tx per bucket (4 lines x 4 ways)"
        );
        if let Some(d) = stress_duration() {
            let soak = stm(alg);
            let r = lru::run(&soak, cfg, 4, d, 3);
            assert!(r.total_ops > 0, "{alg}: soak");
        }
    }
}

#[test]
fn queue_multi_producer_multi_consumer() {
    for alg in Algorithm::ALL {
        let s = stm(alg);
        let q = TQueue::new(&s, 8);
        let per_producer = 300i64;
        let producers = 2;
        let consumed_sum = AtomicI64::new(0);
        let consumed_count = AtomicI64::new(0);
        let total = producers * per_producer;
        std::thread::scope(|scope| {
            for p in 0..producers {
                let s = &s;
                let q = &q;
                scope.spawn(move || {
                    for i in 0..per_producer {
                        let item = p * per_producer + i + 1;
                        loop {
                            if s.atomic(|tx| q.enqueue(tx, item)) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let s = &s;
                let q = &q;
                let consumed_sum = &consumed_sum;
                let consumed_count = &consumed_count;
                scope.spawn(move || loop {
                    if consumed_count.load(Ordering::Relaxed) >= total {
                        break;
                    }
                    if let Some(v) = s.atomic(|tx| q.dequeue(tx)) {
                        consumed_sum.fetch_add(v, Ordering::Relaxed);
                        consumed_count.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                });
            }
        });
        // Consumers may overshoot the check-then-dequeue race by design;
        // drain anything left and verify totals.
        while let Some(v) = s.atomic(|tx| q.dequeue(tx)) {
            consumed_sum.fetch_add(v, Ordering::Relaxed);
            consumed_count.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(consumed_count.load(Ordering::Relaxed), total, "{alg}");
        let expected_sum: i64 = (1..=total).sum();
        assert_eq!(consumed_sum.load(Ordering::Relaxed), expected_sum, "{alg}");
        q.verify(&s).unwrap();
    }
}

#[test]
fn tmap_concurrent_mixed_against_sharded_model() {
    // Threads own disjoint key ranges, so a per-thread model stays
    // exact even under concurrency.
    for alg in [Algorithm::SNOrec, Algorithm::STl2] {
        let s = stm(alg);
        let m = TMap::new(&s);
        std::thread::scope(|scope| {
            for t in 0..3i64 {
                let s = &s;
                let m = &m;
                scope.spawn(move || {
                    let mut model = std::collections::BTreeMap::new();
                    let mut rng = SplitMix64::new(t as u64 + 99);
                    for _ in 0..250 {
                        let key = t * 1000 + rng.below(48) as i64;
                        match rng.below(3) {
                            0 => {
                                let fresh = s.atomic(|tx| m.insert(s, tx, key, key * 2));
                                assert_eq!(fresh, model.insert(key, key * 2).is_none(), "{alg}");
                            }
                            1 => {
                                let got = s.atomic(|tx| m.get(tx, key));
                                assert_eq!(got, model.get(&key).copied(), "{alg}");
                            }
                            _ => {
                                let got = s.atomic(|tx| m.remove(tx, key));
                                assert_eq!(got, model.remove(&key), "{alg}");
                            }
                        }
                    }
                    model
                });
            }
        });
        m.verify(&s).unwrap();
    }
}

#[test]
fn ring_filters_preserve_bank_conservation() {
    // Extension A4 under real contention: filters may only skip
    // validations that could not have failed, so conservation must hold
    // exactly as without them.
    let s = Stm::new(
        StmConfig::new(Algorithm::SNOrec)
            .heap_words(1 << 12)
            .norec_ring_filters(true),
    );
    let cfg = bank::BankConfig {
        accounts: 8,
        ..bank::BankConfig::default()
    };
    let r = bank::run_fixed(&s, cfg, 4, 600, 23);
    assert_exact_accounting(Algorithm::SNOrec, &s, &r, 600);
}

#[test]
fn telemetry_invariants_hold_under_full_tracing() {
    // Heaviest-instrumentation configuration (Trace) under real Bank
    // contention: the telemetry's own accounting identities must hold
    // exactly, for every algorithm.
    for alg in Algorithm::ALL {
        let s = Stm::new(
            StmConfig::new(alg)
                .heap_words(1 << 12)
                .orec_count(1 << 10)
                .telemetry(TelemetryLevel::Trace)
                .trace_capacity(128),
        );
        let cfg = bank::BankConfig {
            accounts: 8, // few accounts = heavy conflicts
            ..bank::BankConfig::default()
        };
        let r = bank::run_fixed(&s, cfg, 4, 600, 17);
        let st = s.stats();
        assert_exact_accounting(alg, &s, &r, 600);
        assert_eq!(
            st.attempts(),
            st.commits + st.total_aborts(),
            "{alg}: commits + aborts == attempts"
        );
        let t = s.telemetry();
        assert_eq!(
            t.commit_latency_ns().count(),
            st.commits,
            "{alg}: one latency sample per commit"
        );
        assert_eq!(
            t.attempts_per_commit().count(),
            st.commits,
            "{alg}: one attempts sample per commit"
        );
        assert_eq!(
            t.attempts_per_commit().sum(),
            st.attempts(),
            "{alg}: attempts histogram covers every attempt"
        );
        assert_eq!(
            t.trace_events().len() as u64 + t.trace_evicted(),
            st.total_aborts(),
            "{alg}: every abort is traced or counted as evicted"
        );
        // Quantiles are drawn from recorded buckets, so they stay within
        // the observed maximum.
        let lat = t.commit_latency_ns();
        assert!(lat.p50() <= lat.p90() && lat.p90() <= lat.p99(), "{alg}");
        assert!(lat.p99() <= lat.max(), "{alg}");
    }
}

#[test]
fn counter_semantic_guard_never_goes_negative() {
    // A bounded semaphore built from cmp+inc: `if v > 0 { v-- }` /
    // `v++` — the canonical pattern the semantic API accelerates.
    for alg in Algorithm::ALL {
        let s = stm(alg);
        let sem = s.alloc_cell(4i64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..200 {
                        let acquired = s.atomic(|tx| {
                            if tx.gt(sem, 0)? {
                                tx.dec(sem, 1)?;
                                Ok(true)
                            } else {
                                Ok(false)
                            }
                        });
                        if acquired {
                            std::hint::spin_loop();
                            s.atomic(|tx| tx.inc(sem, 1));
                        }
                        let v = s.atomic(|tx| tx.read(sem));
                        assert!((0..=4).contains(&v), "{alg}: semaphore {v} out of range");
                    }
                });
            }
        });
        assert_eq!(s.read_now(sem), 4, "{alg}: all permits returned");
    }
}
