//! STAMP Vacation in miniature: an OLTP session mix over a transactional
//! red-black-tree database, showing the paper's Algorithm 4 end to end.
//!
//! ```text
//! cargo run --release --example travel_reservation
//! ```

use semtm::workloads::stamp::vacation::{Vacation, VacationConfig};
use semtm::{Algorithm, Stm, StmConfig};
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    println!("== STAMP Vacation: reservations with semantic availability checks ==\n");
    let cfg = VacationConfig {
        relations: 96,
        queries_per_tx: 8,
        user_pct: 90,
        initial_capacity: 12,
        customers: 64,
    };
    println!(
        "{} offers/relation, {} queried per session, {}% reservation sessions\n",
        cfg.relations, cfg.queries_per_tx, cfg.user_pct
    );
    for alg in Algorithm::ALL {
        let stm = Stm::new(StmConfig::new(alg).heap_words(1 << 21));
        let db = Vacation::new(&stm, cfg);
        let sessions = AtomicU64::new(0);
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let stm = &stm;
                let db = &db;
                let sessions = &sessions;
                s.spawn(move || {
                    let mut rng = semtm::core::util::SplitMix64::new(t + 1);
                    for _ in 0..400 {
                        db.session(stm, &mut rng);
                        sessions.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        db.verify(&stm).expect("reservation invariants");
        let st = stm.stats();
        println!(
            "{:8}  {:4} sessions in {:6.1} ms  aborts {:5} ({:4.1}%)  \
             ops/tx: {:7.1} reads, {:5.1} cmps, {:4.1} incs, {:4.1} promoted",
            alg.name(),
            sessions.load(Ordering::Relaxed),
            start.elapsed().as_secs_f64() * 1000.0,
            st.conflict_aborts(),
            st.abort_pct(),
            st.reads_per_tx(),
            st.cmps_per_tx(),
            st.incs_per_tx(),
            st.promotes_per_tx(),
        );
    }
    println!(
        "\nThe availability check (numFree > 0) and the price race\n\
         (price > max_price) are semantic: concurrent price updates and\n\
         bookings of other units no longer abort a reservation. Note the\n\
         promoted increments — the booking's sanity re-read pins them,\n\
         exactly as the paper observes for Vacation."
    );
}
