//! Quickstart: the extended TM API in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a tiny bank over the semantic STM, runs concurrent guarded
//! transfers on all four algorithms, and prints the operation profile —
//! showing how the same source produces `read`/`write` traffic on the
//! baselines and `cmp`/`inc` traffic on the semantic algorithms.

use semtm::{Algorithm, CmpOp, Stm, StmConfig};

fn main() {
    println!("== semtm quickstart ==\n");

    // 1. Create a runtime. Algorithm is a constructor-time choice; the
    //    API is identical for all four.
    for alg in Algorithm::ALL {
        let stm = Stm::new(StmConfig::new(alg).heap_words(1 << 12));

        // 2. Allocate transactional cells (this is "shared memory").
        let accounts: Vec<_> = (0..8).map(|_| stm.alloc_cell(100i64)).collect();

        // 3. Run concurrent transactions. The overdraft check is the
        //    paper's TM_GTE; the balance updates are TM_DEC / TM_INC.
        std::thread::scope(|s| {
            for t in 0..4usize {
                let stm = &stm;
                let accounts = &accounts;
                s.spawn(move || {
                    for i in 0..500usize {
                        let src = accounts[(t + i) % accounts.len()];
                        let dst = accounts[(t + i * 7 + 1) % accounts.len()];
                        if src == dst {
                            continue;
                        }
                        let amount = (i % 30 + 1) as i64;
                        stm.atomic(|tx| {
                            // if (balance >= amount) { balance -= amount; other += amount }
                            if tx.cmp(src, CmpOp::Gte, amount)? {
                                tx.dec(src, amount)?;
                                tx.inc(dst, amount)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });

        // 4. Check the invariant and read the stats.
        let total: i64 = accounts.iter().map(|a| stm.read_now(*a)).sum();
        assert_eq!(total, 800, "money is conserved");
        let st = stm.stats();
        println!(
            "{:8}  commits {:6}  aborts {:5} ({:4.1}%)  reads/tx {:5.2}  cmps/tx {:5.2}  incs/tx {:5.2}",
            alg.name(),
            st.commits,
            st.conflict_aborts(),
            st.abort_pct(),
            st.reads_per_tx(),
            st.cmps_per_tx(),
            st.incs_per_tx(),
        );
    }

    println!(
        "\nNote how the semantic algorithms (S-NOrec / S-TL2) report the\n\
         same workload as compares+increments instead of reads+writes,\n\
         and typically abort less: a concurrent balance change that keeps\n\
         `balance >= amount` true is no longer a conflict."
    );
}
