//! The paper's Algorithm-3 queue: why `TM_EQ(head, tail)` + `TM_INC`
//! lets enqueuers and dequeuers run concurrently.
//!
//! ```text
//! cargo run --release --example concurrent_queue
//! ```
//!
//! Runs a producer/consumer pipeline over the transactional array queue
//! under NOrec and S-NOrec and compares abort rates: under the classical
//! API every enqueue (which moves `tail`) invalidates every in-flight
//! dequeue (which read `tail` for the emptiness check); under the
//! semantic API the dequeue only recorded "head != tail", which the
//! enqueue does not falsify.

use semtm::workloads::queue::TQueue;
use semtm::{Algorithm, Stm, StmConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn main() {
    println!("== Algorithm 3: array queue, enqueue/dequeue concurrency ==\n");
    for alg in [
        Algorithm::NOrec,
        Algorithm::SNOrec,
        Algorithm::Tl2,
        Algorithm::STl2,
    ] {
        let stm = Stm::new(StmConfig::new(alg).heap_words(1 << 10));
        let q = TQueue::new(&stm, 1024);
        // Keep the queue comfortably non-empty so the semantic win (the
        // emptiness check) is what gets exercised.
        for i in 0..512 {
            stm.atomic(|tx| q.enqueue(tx, i));
        }

        let stop = AtomicBool::new(false);
        let produced = AtomicU64::new(0);
        let consumed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let stm = &stm;
                let q = &q;
                let stop = &stop;
                let produced = &produced;
                s.spawn(move || {
                    let mut i = 1_000_000i64;
                    while !stop.load(Ordering::Relaxed) {
                        if stm.atomic(|tx| q.enqueue(tx, i)) {
                            produced.fetch_add(1, Ordering::Relaxed);
                            i += 1;
                        }
                    }
                });
            }
            for _ in 0..2 {
                let stm = &stm;
                let q = &q;
                let stop = &stop;
                let consumed = &consumed;
                s.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if stm.atomic(|tx| q.dequeue(tx)).is_some() {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(400));
            stop.store(true, Ordering::Relaxed);
        });

        q.verify(&stm).expect("queue integrity");
        let st = stm.stats();
        println!(
            "{:8}  ops {:7}  aborts {:6} ({:4.1}%)",
            alg.name(),
            produced.load(Ordering::Relaxed) + consumed.load(Ordering::Relaxed),
            st.conflict_aborts(),
            st.abort_pct(),
        );
    }
    println!(
        "\nThe semantic algorithms keep the emptiness check as a relation\n\
         (head != tail), so enqueues no longer abort concurrent dequeues."
    );
}
