//! STAMP Labyrinth in miniature: route wire pairs through a shared 3-D
//! grid, comparing the paper's two transaction shapes ("Labyrinth 1"
//! with the grid copy inside the transaction, "Labyrinth 2" with it
//! hoisted out) and printing an ASCII rendering of layer 0.
//!
//! ```text
//! cargo run --release --example maze_router
//! ```

use semtm::workloads::stamp::labyrinth::{Labyrinth, LabyrinthConfig, Variant, EMPTY, WALL};
use semtm::{Algorithm, Stm, StmConfig};
use std::sync::Mutex;

fn main() {
    println!("== STAMP Labyrinth: transactional maze routing ==\n");
    for (name, variant) in [
        ("Labyrinth 1 (copy inside tx) ", Variant::CopyInsideTx),
        ("Labyrinth 2 (copy outside tx)", Variant::CopyOutsideTx),
    ] {
        for alg in [Algorithm::Tl2, Algorithm::STl2] {
            let stm = Stm::new(StmConfig::new(alg).heap_words(1 << 14));
            let cfg = LabyrinthConfig {
                x: 20,
                y: 12,
                z: 2,
                pairs: 10,
                wall_pct: 12,
                variant,
            };
            let maze = Labyrinth::new(&stm, cfg, 2026);
            let routed = Mutex::new(Vec::new());
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for t in 0..2usize {
                    let stm = &stm;
                    let maze = &maze;
                    let routed = &routed;
                    s.spawn(move || {
                        let mut i = t;
                        while i < cfg.pairs {
                            if let Some(path) = maze.route(stm, i, i as i64 + 1) {
                                routed.lock().unwrap().push((i as i64 + 1, path));
                            }
                            i += 2;
                        }
                    });
                }
            });
            let routed = routed.into_inner().unwrap();
            maze.verify(&stm, &routed).expect("no overlapping paths");
            let st = stm.stats();
            println!(
                "{name} {:6}: {:2}/{} routed in {:6.1} ms, aborts {:5} ({:4.1}%)",
                alg.name(),
                routed.len(),
                cfg.pairs,
                start.elapsed().as_secs_f64() * 1000.0,
                st.conflict_aborts(),
                st.abort_pct(),
            );

            // ASCII view of layer 0 for the last configuration.
            if variant == Variant::CopyOutsideTx && alg == Algorithm::STl2 {
                println!("\nlayer 0 ('#' wall, '.' empty, letters are paths):");
                for y in 0..cfg.y {
                    let mut line = String::new();
                    for x in 0..cfg.x {
                        let v = maze.cell_now(&stm, y * cfg.x + x);
                        line.push(match v {
                            WALL => '#',
                            EMPTY => '.',
                            id => (b'a' + ((id - 1) % 26) as u8) as char,
                        });
                    }
                    println!("  {line}");
                }
            }
        }
    }
}
