//! The GCC-integration pipeline (paper §6), end to end: write a kernel
//! in classical TM style, let `tm_mark` discover the semantic patterns,
//! let `tm_optimize` delete the dead transactional reads, then execute
//! both versions and compare TM-runtime dispatch counts.
//!
//! ```text
//! cargo run --release --example compiler_pass
//! ```

use semtm::ir::{parse_function, run_tm_passes, Interp};
use semtm::{Algorithm, Stm, StmConfig};

const KERNEL: &str = r"
; withdraw_if_covered(account, fee_sink, amount):
;   atomic {
;     if (*account >= amount) {
;       *account = *account - amount;
;       *fee_sink = *fee_sink + 1;
;     }
;   }
func withdraw_if_covered(3) {
entry:
  tmbegin
  r3 = tmload r0
  r4 = cmp.gte r3, r2
  condbr r4, covered, out
covered:
  r5 = tmload r0
  r6 = sub r5, r2
  tmstore r0, r6
  r7 = tmload r1
  r8 = add r7, 1
  tmstore r1, r8
  br out
out:
  tmend
  ret r4
}
";

fn main() {
    println!("== paper §6: tm_mark + tm_optimize on a classical TM kernel ==");

    let plain = parse_function(KERNEL).expect("kernel parses");
    println!("\n--- GIMPLE-like input (what _transaction_atomic lowers to) ---\n{plain}");

    let mut passed = plain.clone();
    let report = run_tm_passes(&mut passed);
    println!("--- after tm_mark + tm_optimize ---\n{passed}");
    println!(
        "pass report: {} cmp(s) -> _ITM_S1R, {} -> _ITM_S2R, {} store(s) -> _ITM_SW, \
         {} dead TM load(s) removed, {} dead ALU op(s) removed",
        report.s1r, report.s2r, report.sw, report.loads_removed, report.pure_removed
    );
    println!(
        "barrier count: {} -> {} (the paper's 2->1 TM-call reduction)\n",
        plain.barrier_count(),
        passed.barrier_count()
    );

    // Execute both versions and show identical behaviour with fewer
    // runtime dispatches.
    for (label, func) in [("unmodified", &plain), ("modified-GCC", &passed)] {
        let stm = Stm::new(StmConfig::new(Algorithm::SNOrec).heap_words(64));
        let account = stm.alloc_cell(100i64);
        let fees = stm.alloc_cell(0i64);
        let interp = Interp::new(&stm);
        for amount in [30, 30, 30, 30] {
            // the 4th withdrawal is not covered
            interp
                .execute(func, &[account.index() as i64, fees.index() as i64, amount])
                .expect("kernel runs");
        }
        println!(
            "{label:13}  account {:3}  fees {}  TM dispatches {:2}  (same result, fewer calls)",
            stm.read_now(account),
            stm.read_now(fees),
            interp.counters.tm_calls(),
        );
        assert_eq!(stm.read_now(account), 10);
        assert_eq!(stm.read_now(fees), 3);
    }
}
