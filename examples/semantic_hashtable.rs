//! The paper's Algorithm 2: open-addressing hash-table probing with
//! semantic checks — the benchmark with the paper's best speedup (4x).
//!
//! ```text
//! cargo run --release --example semantic_hashtable
//! ```
//!
//! Probing only needs each visited cell to be "not FREE and (REMOVED or
//! a different key)" — relations, not values. This example runs the
//! same mixed workload on all four algorithms and prints throughput and
//! abort rate side by side (a miniature of Figures 1a/1b).

use semtm::workloads::hashtable::{Hashtable, HashtableConfig};
use semtm::{Algorithm, Stm, StmConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

fn main() {
    println!("== Algorithm 2: open-addressing probe as semantic compares ==\n");
    let cfg = HashtableConfig {
        capacity: 1 << 10,
        fill_pct: 40,
        tombstone_pct: 40, // long probe chains: big read/compare sets
        ops_per_tx: 10,
        get_pct: 80,
        key_space: 1 << 12,
        padded: false,
    };
    println!(
        "{} cells, {}% live, {}% tombstones, {} ops/tx\n",
        1 << 10,
        cfg.fill_pct,
        cfg.tombstone_pct,
        cfg.ops_per_tx
    );
    let mut baseline = 0.0f64;
    for alg in Algorithm::ALL {
        let stm = Stm::new(StmConfig::new(alg).heap_words(1 << 16));
        let table = Hashtable::new(&stm, cfg);
        let stop = AtomicBool::new(false);
        let ops = AtomicU64::new(0);
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let stm = &stm;
                let table = &table;
                let stop = &stop;
                let ops = &ops;
                s.spawn(move || {
                    let mut rng = semtm::core::util::SplitMix64::new(t + 1);
                    while !stop.load(Ordering::Relaxed) {
                        table.workload_tx(stm, &mut rng);
                        ops.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            std::thread::sleep(Duration::from_millis(400));
            stop.store(true, Ordering::Relaxed);
        });
        table.verify(&stm).expect("hashtable integrity");
        let ktps = ops.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64() / 1000.0;
        let st = stm.stats();
        if alg == Algorithm::NOrec {
            baseline = ktps;
        }
        println!(
            "{:8}  {:8.1} kTx/s ({:4.2}x NOrec)  abort {:5.1}%  probe ops/tx: {:6.1} reads, {:6.1} cmps",
            alg.name(),
            ktps,
            if baseline > 0.0 { ktps / baseline } else { 1.0 },
            st.abort_pct(),
            st.reads_per_tx(),
            st.cmps_per_tx(),
        );
    }
    println!(
        "\nEvery probe step turned into a compare under S-NOrec / S-TL2:\n\
         concurrent inserts that do not change a recorded relation's\n\
         outcome no longer abort the probing transactions."
    );
}
