//! # semtm — facade crate
//!
//! Re-exports the three layers of the reproduction of *"Extending TM
//! Primitives using Low Level Semantics"* (SPAA 2016):
//!
//! * [`semtm_core`] (re-exported as `core`) — the semantic STM runtime (NOrec, S-NOrec,
//!   TL2, S-TL2 over a transactional heap);
//! * [`semtm_ir`] (re-exported as `ir`) — the compiler-integration substrate (GIMPLE-like
//!   IR, `tm_mark`/`tm_optimize` passes, transactional interpreter);
//! * [`semtm_workloads`] (re-exported as `workloads`) — the paper's benchmarks (Bank,
//!   Hashtable, LRU, Queue and the STAMP ports).
//!
//! The examples under `examples/` and the integration tests under
//! `tests/` use this crate; see README.md for a walkthrough.

pub use semtm_core as core;
pub use semtm_ir as ir;
pub use semtm_workloads as workloads;

// Flat re-exports of the everyday API.
pub use semtm_core::{
    Abort, AbortEvent, AbortReason, AdaptPolicy, Addr, Algorithm, CmpOp, Conflict, ConflictEdge,
    Fx32, Heap, HistogramSnapshot, Mode, SamplePoint, Sampler, SpanEvent, StatsSnapshot, Stm,
    StmConfig, SwitchError, SwitchReport, TArray, TVar, Telemetry, TelemetryLevel, Tx, Word,
};
