#!/usr/bin/env bash
# Tier-1 gate: everything here must pass offline (no registry access).
# Mirrors .github/workflows/tier1.yml; run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> schedule-exploration smoke (semtm-check)"
# Bounded deterministic exploration: exhaustive DFS over the scheduler's
# fault-injection scenarios plus the cross-backend differential fuzzer.
# SEMTM_CHECK_ITERS bounds the fuzz budget (default 1000 programs x 4
# algorithms, a few seconds); raise it for soak runs outside this gate.
SEMTM_CHECK_ITERS="${SEMTM_CHECK_ITERS:-1000}" cargo test -q -p semtm-check

echo "==> sharded-clock re-run (semtm-check, SEMTM_CLOCK_SHARDS=4)"
# The whole deterministic suite again with the sharded commit clock
# selected for every NOrec-family backend (DESIGN.md §8): DFS
# exploration, opacity checking and the differential fuzzer all drive
# the multi-shard acquire/epoch/write-back protocol. Smaller fuzz
# budget — the first run already soaked the global-clock engines.
SEMTM_CLOCK_SHARDS=4 SEMTM_CHECK_ITERS="${SEMTM_SHARDED_ITERS:-200}" \
  cargo test -q -p semtm-check

echo "==> crash-recovery matrix (kill-at-any-schedule-point sweep)"
# Every engine (incl. the sharded-clock S-NOrec) x {bank, slots} kernel:
# random schedules where *each* schedule point doubles as a crash point;
# every sampled storage state is recovered under three tail policies and
# checked for prefix durability (no acked commit lost) and atomicity (no
# partial transaction visible). SEMTM_CRASH_SEEDS scales the sweep for
# soak runs. Writes results/check/crash_matrix.csv.
SEMTM_CRASH_SEEDS="${SEMTM_CRASH_SEEDS:-4}" \
  cargo test -q -p semtm-check --test crash_matrix
grep -q "S-NOrec,4,slots" results/check/crash_matrix.csv

echo "==> trace-export smoke (figures -- trace)"
# Tiny skewed-Bank sweep under the flight recorder; the harness
# schema-validates its own Chrome trace JSON (one track and at least one
# complete span per worker) and exits non-zero on any violation.
cargo run --release -q -p semtm-bench --bin figures -- --smoke trace

echo "==> layout/clock ablation smoke (figures -- ablation-layout)"
# Smoke-scale A5 sweep (all four {clock}x{layout} variants on Bank +
# contended hashtable). Runs in a scratch dir so the checked-in
# paper-scale results/ablation_layout.csv is never clobbered; the
# smoke CSV lands under results/check/ (gitignored, uploaded by CI).
root="$PWD"
tmp="$(mktemp -d)"
(cd "$tmp" && cargo run --release -q --manifest-path "$root/Cargo.toml" \
  -p semtm-bench --bin figures -- --smoke ablation-layout)
mkdir -p results/check
cp "$tmp/results/ablation_layout.csv" results/check/ablation_layout_smoke.csv
rm -rf "$tmp"
grep -q "sharded+padded" results/check/ablation_layout_smoke.csv

echo "==> durability ablation smoke (figures -- ablation-durability)"
# Smoke-scale A6 sweep ({no-wal, per-commit fsync, group commit} on
# Bank, plus recovery-replay throughput). Same scratch-dir pattern as
# A5; the smoke CSV lands under results/check/ for CI upload.
tmp="$(mktemp -d)"
(cd "$tmp" && cargo run --release -q --manifest-path "$root/Cargo.toml" \
  -p semtm-bench --bin figures -- --smoke ablation-durability)
cp "$tmp/results/ablation_durability.csv" results/check/ablation_durability_smoke.csv
rm -rf "$tmp"
grep -q "wal-group" results/check/ablation_durability_smoke.csv
grep -q "recovery" results/check/ablation_durability_smoke.csv

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> semlint (checked-in IR programs + differential oracle)"
# The shipping kernels must be warning-clean (duplicate loads the
# passes fold are downgraded to info), and the oracle must agree on
# every backend.
cargo run --release -q -p semtm-ir --bin semlint -- --deny warnings --oracle programs/*.ir

echo "==> semlint seeded-defect fixtures + SARIF artifact"
# Each programs/lintcases/*.ir seeds exactly one SL rule (exact
# per-rule counts are asserted by crates/ir/tests/lintcases.rs), so
# semlint over the combined set MUST fail — while writing the SARIF
# report that CI uploads as an artifact.
mkdir -p results
if cargo run --release -q -p semtm-ir --bin semlint -- \
    --format sarif --output results/semlint.sarif \
    programs/*.ir programs/lintcases/*.ir; then
  echo "tier1: semlint missed the seeded defects in programs/lintcases" >&2
  exit 1
fi
test -s results/semlint.sarif

echo "tier1: OK"
